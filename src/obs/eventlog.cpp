#include "obs/eventlog.hpp"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>

#include "support/env.hpp"

namespace bgpsim::obs {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::atomic<bool> g_handlers_installed{false};

// Every record is flushed as it is written, so there is nothing buffered to
// rescue here (and fstream calls are not async-signal-safe anyway): just
// re-deliver the signal with its default disposition so a Ctrl-C still kills
// the sweep — leaving a log whose only possible damage is a torn final line.
void eventlog_signal_handler(int signum) {
  std::signal(signum, SIG_DFL);  // bgpsim-lint: allow(signal-safety)
  std::raise(signum);
}

// Called once, on the first successful open. The atexit flush covers exits
// that bypass static destruction order; the SIGINT hook is only installed
// when the process still has the default disposition (never clobber a host
// application's handler).
void install_crash_safety_handlers() {
  if (g_handlers_installed.exchange(true, std::memory_order_acq_rel)) return;
  std::atexit([] { EventLogSink::instance().flush(); });
  const auto previous =
      std::signal(SIGINT, &eventlog_signal_handler);  // bgpsim-lint: allow(signal-safety)
  if (previous != SIG_DFL && previous != SIG_ERR) {
    std::signal(SIGINT, previous);  // bgpsim-lint: allow(signal-safety)
  }
}

}  // namespace

EventLogSink& EventLogSink::instance() {
  static EventLogSink sink;
  // Apply the environment once, after construction, so standalone sinks
  // (the serve access log) never inherit BGPSIM_EVENTLOG.
  static const bool env_applied = [] {
    const std::string path = env_string("BGPSIM_EVENTLOG", "");
    if (!path.empty()) sink.set_output(path);
    return true;
  }();
  (void)env_applied;
  return sink;
}

EventLogSink::EventLogSink() : epoch_ns_(steady_now_ns()) {}

EventLogSink::~EventLogSink() { flush(); }

void EventLogSink::set_output(const std::string& path) {
  MutexLock lock(&mutex_);
  if (out_.is_open()) {
    out_.flush();
    out_.close();
  }
  path_.clear();
  if (path.empty()) {
    enabled_.store(false, std::memory_order_relaxed);
    return;
  }
  // Best-effort parent creation, like the report writer: observability must
  // never take down an experiment, so failure just leaves the log disabled.
  std::error_code ec;
  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path(), ec);
  }
  out_.open(target, std::ios::binary | std::ios::trunc);
  enabled_.store(out_.is_open(), std::memory_order_relaxed);
  if (out_.is_open()) {
    path_ = path;
    install_crash_safety_handlers();
  }
}

std::string EventLogSink::path() const {
  MutexLock lock(&mutex_);
  return path_;
}

double EventLogSink::now_seconds() const {
  return static_cast<double>(steady_now_ns() - epoch_ns_) * 1e-9;
}

std::uint64_t EventLogSink::write_record(std::string_view open_object) {
  MutexLock lock(&mutex_);
  const std::uint64_t seq = next_seq_++;
  if (out_.is_open()) {
    // Crash safety: flush every line. A killed sweep (OOM, Ctrl-C, CI
    // timeout) leaves at worst one torn trailing line; every complete line
    // stays parseable. Heartbeats make the log a liveness signal, which only
    // works if records reach the file as they happen.
    out_ << open_object << ",\"seq\":" << seq << "}\n";
    out_.flush();
  }
  return seq;
}

void EventLogSink::flush() {
  MutexLock lock(&mutex_);
  if (out_.is_open()) out_.flush();
}

namespace {

thread_local std::string t_request_id;  // NOLINT

}  // namespace

void set_thread_request_id(std::string_view id) { t_request_id.assign(id); }

const std::string& thread_request_id() { return t_request_id; }

EventRecord::EventRecord(const char* type, EventLogSink* sink)
    : sink_(sink != nullptr ? sink : &EventLogSink::instance()) {
  json_.begin_object();
  json_.field("type", type);
  json_.field("ts", sink_->now_seconds());
}

void EventRecord::emit() {
  if (emitted_) return;
  emitted_ = true;
  EventLogSink& sink = *sink_;
  if (!sink.enabled()) return;
  // The writer's object is still open (no end_object): the sink appends the
  // seq field and the closing brace under its lock.
  sink.write_record(json_.str());
}

}  // namespace bgpsim::obs
