#include "net/http_common.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>

namespace bgpsim::net {
namespace {

/// Wait for readability, then recv. Returns bytes read, 0 on orderly close,
/// -1 on error, -2 on timeout.
ssize_t recv_with_timeout(int fd, char* buf, std::size_t len, int timeout_ms) {
  struct pollfd pfd{fd, POLLIN, 0};
  const int ready = poll(&pfd, 1, timeout_ms);
  if (ready == 0) return -2;
  if (ready < 0) return -1;
  return recv(fd, buf, len, 0);
}

}  // namespace

std::string_view find_header(std::string_view head, std::string_view name) {
  std::size_t pos = 0;
  while (pos < head.size()) {
    std::size_t eol = head.find('\n', pos);
    if (eol == std::string_view::npos) eol = head.size();
    std::string_view line = head.substr(pos, eol - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.size() > name.size() && line[name.size()] == ':') {
      bool match = true;
      for (std::size_t i = 0; i < name.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(line[i])) !=
            std::tolower(static_cast<unsigned char>(name[i]))) {
          match = false;
          break;
        }
      }
      if (match) {
        std::string_view value = line.substr(name.size() + 1);
        while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
        return value;
      }
    }
    pos = eol + 1;
  }
  return {};
}

std::string_view HttpRequest::header(std::string_view name) const {
  return find_header(head, name);
}

HttpReadStatus read_http_request(int fd, const HttpLimits& limits,
                                 HttpRequest& out, HttpReadHook on_first_byte,
                                 void* user) {
  std::string buffer;
  buffer.reserve(1024);

  // Read until the blank line ending the head (tolerate bare-LF clients).
  std::size_t head_end = std::string::npos;
  std::size_t body_start = 0;
  char chunk[1024];
  while (head_end == std::string::npos) {
    if (buffer.size() >= limits.max_head_bytes) return HttpReadStatus::TooLarge;
    const ssize_t n = recv_with_timeout(
        fd, chunk, std::min(sizeof(chunk), limits.max_head_bytes - buffer.size()),
        limits.read_timeout_millis);
    if (n == -2) return HttpReadStatus::Timeout;
    if (n <= 0) return HttpReadStatus::Closed;
    if (buffer.empty() && on_first_byte != nullptr) {
      on_first_byte(user);
      on_first_byte = nullptr;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (const auto crlf = buffer.find("\r\n\r\n"); crlf != std::string::npos) {
      head_end = crlf;
      body_start = crlf + 4;
    } else if (const auto lf = buffer.find("\n\n"); lf != std::string::npos) {
      head_end = lf;
      body_start = lf + 2;
    }
  }

  // Retain the raw head so callers can consult request headers (request-id
  // passthrough, future keep-alive negotiation) without re-reading.
  out.head = buffer.substr(0, head_end);
  const std::string_view head(out.head);

  // Request line: METHOD SP TARGET SP HTTP/x.y
  std::size_t line_end = head.find('\n');
  std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  if (!request_line.empty() && request_line.back() == '\r') {
    request_line.remove_suffix(1);
  }
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      request_line.substr(sp2 + 1).rfind("HTTP/", 0) != 0) {
    return HttpReadStatus::Malformed;
  }
  out.method.assign(request_line.substr(0, sp1));
  out.target.assign(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  if (out.method.empty() || out.target.empty() || out.target[0] != '/') {
    return HttpReadStatus::Malformed;
  }

  // Body: exactly Content-Length bytes (no chunked encoding — the query
  // service's clients are curl and test harnesses).
  out.body.clear();
  const std::string_view length_text = find_header(head, "content-length");
  if (!length_text.empty()) {
    std::uint64_t declared = 0;
    for (const char c : length_text) {
      if (c < '0' || c > '9') return HttpReadStatus::Malformed;
      declared = declared * 10 + static_cast<std::uint64_t>(c - '0');
      if (declared > limits.max_body_bytes) return HttpReadStatus::TooLarge;
    }
    out.body = buffer.substr(body_start);
    if (out.body.size() > declared) out.body.resize(declared);
    while (out.body.size() < declared) {
      const ssize_t n = recv_with_timeout(
          fd, chunk, std::min(sizeof(chunk), declared - out.body.size()),
          limits.read_timeout_millis);
      if (n == -2) return HttpReadStatus::Timeout;
      if (n <= 0) return HttpReadStatus::Closed;
      out.body.append(chunk, static_cast<std::size_t>(n));
    }
  }
  return HttpReadStatus::Ok;
}

const char* http_status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

void write_http_response(int fd, int status, std::string_view content_type,
                         std::string_view body, std::string_view extra_headers) {
  char status_line[256];
  std::snprintf(status_line, sizeof(status_line),
                "HTTP/1.1 %d %s\r\n"
                "Content-Type: %.*s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n",
                status, http_status_text(status),
                static_cast<int>(content_type.size()), content_type.data(),
                body.size());
  std::string header(status_line);
  header.append(extra_headers);
  header.append("\r\n");
  (void)send(fd, header.data(), header.size(), MSG_NOSIGNAL);
  std::size_t sent = 0;
  while (sent < body.size()) {
    const ssize_t n =
        send(fd, body.data() + sent, body.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
}

int open_loopback_listener(std::uint16_t port, std::uint16_t& bound_port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd, 16) != 0) {
    close(fd);
    return -1;
  }
  // Non-blocking so several workers can poll()+accept() the same listener:
  // one wins the race, the rest see EAGAIN and go back to waiting.
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);

  struct sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &len) == 0) {
    bound_port = ntohs(bound.sin_port);
  } else {
    bound_port = port;
  }
  return fd;
}

}  // namespace bgpsim::net
