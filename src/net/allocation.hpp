// Address-space allocation: give every AS concrete disjoint IPv4 prefixes
// matching its /24-equivalent weight, so hijacks can be expressed against
// real prefixes (exact-prefix vs sub-prefix) and ROAs can be issued.
#pragma once

#include <vector>

#include "net/prefix.hpp"
#include "topology/as_graph.hpp"

namespace bgpsim {

struct PrefixAllocation {
  /// Prefixes owned by each AS (indexed by AsId); disjoint across ASes.
  std::vector<std::vector<Prefix>> by_as;

  /// The single largest prefix of an AS (every AS gets at least one).
  const Prefix& primary(AsId as_id) const;

  /// Total /24-equivalents allocated.
  std::uint64_t total_slash24() const;
};

/// Carve disjoint prefixes out of unicast space with a buddy allocator:
/// each AS receives power-of-two blocks covering its address_space() weight
/// (in /24 units, capped at /24 granularity). Deterministic.
PrefixAllocation allocate_prefixes(const AsGraph& graph);

}  // namespace bgpsim
