#include "net/prefix.hpp"

#include "support/assert.hpp"
#include "support/strings.hpp"

namespace bgpsim {

Prefix Prefix::make(std::uint32_t address, std::uint8_t length) {
  BGPSIM_REQUIRE(length <= 32, "prefix length > 32");
  const Prefix p(address, length);
  BGPSIM_REQUIRE((address & ~p.mask()) == 0, "host bits set in prefix");
  return p;
}

std::optional<Prefix> Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto len = parse_u64(text.substr(slash + 1));
  if (!len || *len > 32) return std::nullopt;

  const auto octets = bgpsim::split(text.substr(0, slash), '.');
  if (octets.size() != 4) return std::nullopt;
  std::uint32_t address = 0;
  for (const auto part : octets) {
    const auto value = parse_u64(part);
    if (!value || *value > 255) return std::nullopt;
    address = (address << 8) | static_cast<std::uint32_t>(*value);
  }
  const Prefix p(address, static_cast<std::uint8_t>(*len));
  if ((address & ~p.mask()) != 0) return std::nullopt;  // host bits set
  return p;
}

std::pair<Prefix, Prefix> Prefix::split() const {
  BGPSIM_REQUIRE(length_ < 32, "cannot split a /32");
  const auto child_len = static_cast<std::uint8_t>(length_ + 1);
  const std::uint32_t high_bit = std::uint32_t{1} << (32 - child_len);
  return {Prefix(address_, child_len), Prefix(address_ | high_bit, child_len)};
}

std::string Prefix::to_string() const {
  return std::to_string((address_ >> 24) & 0xff) + "." +
         std::to_string((address_ >> 16) & 0xff) + "." +
         std::to_string((address_ >> 8) & 0xff) + "." +
         std::to_string(address_ & 0xff) + "/" + std::to_string(length_);
}

}  // namespace bgpsim
