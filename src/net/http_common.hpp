// Shared HTTP/1.1 plumbing for the loopback servers in this repo: the
// /metrics exposition endpoint (obs heartbeat) and the bgpsim::serve query
// router both speak through these helpers.
//
// Scope is deliberately narrow — blocking sockets driven by poll(), one
// request per connection, Connection: close — because both servers are
// operational plumbing, not general web servers. What the helpers do add
// over the original metrics-only loop:
//   * a per-connection read timeout (a stalled peer cannot pin a worker),
//   * oversized-request rejection (bounded head and body buffers), and
//   * request-line + Content-Length parsing so POST bodies work.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace bgpsim::net {

/// One parsed request: "POST /v1/attack HTTP/1.1" + optional body.
struct HttpRequest {
  std::string method;  ///< "GET", "POST", ... (uppercase as received)
  std::string target;  ///< request-target, e.g. "/metrics" or "/v1/attack"
  std::string body;    ///< Content-Length bytes (empty when none declared)
  std::string head;    ///< raw request head (request line + headers)

  /// Value of `name` (case-insensitive) from the retained head, or empty.
  std::string_view header(std::string_view name) const;
};

/// Case-insensitive search for a header name at line starts inside a raw
/// request head; returns the trimmed value substring or empty when absent.
std::string_view find_header(std::string_view head, std::string_view name);

/// Why read_http_request returned without a usable request.
enum class HttpReadStatus : std::uint8_t {
  Ok,        ///< request parsed; respond and close
  Closed,    ///< peer closed (or sent nothing) before a full head arrived
  Timeout,   ///< peer stalled past the read timeout; close without answering
  TooLarge,  ///< head or declared body exceeds the limits; answer 413
  Malformed, ///< not parseable as HTTP/1.x; answer 400
};

/// Bounds applied to every connection.
struct HttpLimits {
  std::size_t max_head_bytes = 8192;
  std::size_t max_body_bytes = 64 * 1024;
  /// Budget for each poll() wait while reading; a peer that sends nothing
  /// for this long is treated as stalled.
  int read_timeout_millis = 2000;
};

/// Observation hook fired once when the first request bytes arrive (plain
/// function pointer + user cookie so the serve layer can split "waiting for
/// the client" from "reading the request" without this layer owning clocks).
using HttpReadHook = void (*)(void* user);

/// Read and parse one request from `fd` (blocking socket, poll()-driven).
/// On anything but Ok the contents of `out` are unspecified.
/// `on_first_byte(user)` (when non-null) fires once, right after the first
/// successful recv of this request.
HttpReadStatus read_http_request(int fd, const HttpLimits& limits,
                                 HttpRequest& out,
                                 HttpReadHook on_first_byte = nullptr,
                                 void* user = nullptr);

/// Standard reason phrase for the handful of codes the servers emit.
const char* http_status_text(int status);

/// Serialize and send one response, Connection: close. `extra_headers`,
/// when non-empty, is spliced verbatim into the head and must be complete
/// CRLF-terminated header lines (e.g. "X-Request-Id: abc\r\n"). Short writes
/// and send errors are swallowed — the connection is closed right after
/// anyway.
void write_http_response(int fd, int status, std::string_view content_type,
                         std::string_view body,
                         std::string_view extra_headers = {});

/// Bind a loopback TCP listener (port 0 = ephemeral) and start listening.
/// Returns the listening fd (non-blocking) and fills `bound_port`, or -1.
int open_loopback_listener(std::uint16_t port, std::uint16_t& bound_port);

}  // namespace bgpsim::net
