// Binary prefix trie with longest-prefix matching — the lookup structure
// behind ROA validation and data-plane resolution of sub-prefix hijacks.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/prefix.hpp"
#include "support/assert.hpp"

namespace bgpsim {

template <typename T>
class PrefixTrie {
 public:
  /// Insert (or append to) the entry list at `prefix`.
  void insert(const Prefix& prefix, T value) {
    Node* node = &root_;
    for (std::uint8_t bit = 0; bit < prefix.length(); ++bit) {
      const bool one = (prefix.address() >> (31 - bit)) & 1u;
      auto& child = one ? node->one : node->zero;
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    node->values.push_back(std::move(value));
    ++size_;
  }

  /// Entries at the longest prefix covering `lookup` (nullptr when none).
  /// Only prefixes no longer than lookup.length() qualify as covering.
  const std::vector<T>* longest_match(const Prefix& lookup) const {
    const Node* node = &root_;
    const std::vector<T>* best = node->values.empty() ? nullptr : &node->values;
    for (std::uint8_t bit = 0; bit < lookup.length() && node != nullptr; ++bit) {
      const bool one = (lookup.address() >> (31 - bit)) & 1u;
      node = (one ? node->one : node->zero).get();
      if (node != nullptr && !node->values.empty()) best = &node->values;
    }
    return best;
  }

  /// Visit the entries of every prefix covering `lookup`, shortest first.
  void for_each_covering(const Prefix& lookup,
                         const std::function<void(const T&)>& visit) const {
    const Node* node = &root_;
    for (const T& v : node->values) visit(v);
    for (std::uint8_t bit = 0; bit < lookup.length(); ++bit) {
      const bool one = (lookup.address() >> (31 - bit)) & 1u;
      node = (one ? node->one : node->zero).get();
      if (node == nullptr) return;
      for (const T& v : node->values) visit(v);
    }
  }

  /// Entries stored exactly at `prefix` (nullptr when none).
  const std::vector<T>* exact(const Prefix& prefix) const {
    const Node* node = &root_;
    for (std::uint8_t bit = 0; bit < prefix.length() && node != nullptr; ++bit) {
      const bool one = (prefix.address() >> (31 - bit)) & 1u;
      node = (one ? node->one : node->zero).get();
    }
    if (node == nullptr || node->values.empty()) return nullptr;
    return &node->values;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  struct Node {
    std::vector<T> values;
    std::unique_ptr<Node> zero;
    std::unique_ptr<Node> one;
  };

  Node root_;
  std::size_t size_ = 0;
};

}  // namespace bgpsim
