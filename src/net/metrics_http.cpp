#include "net/metrics_http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

namespace bgpsim::net {
namespace {

// How long poll() sleeps between stop-flag checks. Keeps stop() latency
// bounded without busy-waiting (and without <chrono>, which library code
// outside src/obs/ must not use).
constexpr int kPollMillis = 200;

// Read the request head (until blank line or buffer full) with a short
// timeout, then answer. Anything that is not "GET /metrics" gets a 404.
void handle_connection(int fd, const MetricsHttpServer::Provider& provider) {
  char request[2048];
  std::size_t used = 0;
  while (used < sizeof(request) - 1) {
    struct pollfd pfd{fd, POLLIN, 0};
    if (poll(&pfd, 1, kPollMillis * 5) <= 0) break;
    const ssize_t n = recv(fd, request + used, sizeof(request) - 1 - used, 0);
    if (n <= 0) break;
    used += static_cast<std::size_t>(n);
    request[used] = '\0';
    if (std::strstr(request, "\r\n\r\n") != nullptr ||
        std::strstr(request, "\n\n") != nullptr) {
      break;
    }
  }
  request[used] = '\0';

  std::string body;
  const char* status = "404 Not Found";
  const char* content_type = "text/plain; charset=utf-8";
  if (std::strncmp(request, "GET /metrics", 12) == 0 &&
      (request[12] == ' ' || request[12] == '?')) {
    status = "200 OK";
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    body = provider ? provider() : std::string();
  } else {
    body = "not found\n";
  }

  char header[256];
  std::snprintf(header, sizeof(header),
                "HTTP/1.1 %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n"
                "\r\n",
                status, content_type, body.size());
  (void)send(fd, header, std::strlen(header), 0);
  std::size_t sent = 0;
  while (sent < body.size()) {
    const ssize_t n = send(fd, body.data() + sent, body.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

bool MetricsHttpServer::start(std::uint16_t port, Provider provider) {
  if (running()) return false;

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd, 8) != 0) {
    close(fd);
    return false;
  }
  struct sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = port;
  }

  provider_ = std::move(provider);
  listen_fd_ = fd;
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve(); });
  return true;
}

void MetricsHttpServer::stop() {
  if (!running()) return;
  stop_requested_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  port_ = 0;
  running_.store(false, std::memory_order_release);
}

void MetricsHttpServer::serve() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    struct pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = poll(&pfd, 1, kPollMillis);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int conn = accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    handle_connection(conn, provider_);
    close(conn);
  }
}

}  // namespace bgpsim::net
