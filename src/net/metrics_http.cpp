#include "net/metrics_http.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/http_common.hpp"

namespace bgpsim::net {
namespace {

// How long poll() sleeps between stop-flag checks. Keeps stop() latency
// bounded without busy-waiting (and without <chrono>, which library code
// outside src/obs/ must not use).
constexpr int kPollMillis = 200;

// A scrape request is tiny; anything bigger is not a Prometheus scraper.
constexpr HttpLimits kScrapeLimits{
    .max_head_bytes = 2048,
    .max_body_bytes = 0,
    .read_timeout_millis = 1000,
};

void handle_connection(int fd, const MetricsHttpServer::Provider& provider) {
  HttpRequest request;
  switch (read_http_request(fd, kScrapeLimits, request)) {
    case HttpReadStatus::Ok:
      break;
    case HttpReadStatus::TooLarge:
      write_http_response(fd, 413, "text/plain; charset=utf-8",
                          "request too large\n");
      return;
    case HttpReadStatus::Malformed:
      write_http_response(fd, 400, "text/plain; charset=utf-8",
                          "malformed request\n");
      return;
    case HttpReadStatus::Timeout:
    case HttpReadStatus::Closed:
      return;  // nothing useful to answer
  }

  const bool is_metrics = request.method == "GET" &&
                          request.target.rfind("/metrics", 0) == 0 &&
                          (request.target.size() == 8 ||
                           request.target[8] == '?');
  if (is_metrics) {
    write_http_response(fd, 200, "text/plain; version=0.0.4; charset=utf-8",
                        provider ? provider() : std::string());
  } else {
    write_http_response(fd, 404, "text/plain; charset=utf-8", "not found\n");
  }
}

}  // namespace

bool MetricsHttpServer::start(std::uint16_t port, Provider provider) {
  MutexLock lock(&mutex_);
  if (running_.load(std::memory_order_acquire)) return false;

  std::uint16_t bound = 0;
  const int fd = open_loopback_listener(port, bound);
  if (fd < 0) return false;
  port_.store(bound, std::memory_order_release);

  listen_fd_ = fd;
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  // The loop owns its provider copy: nothing it touches is guarded, so a
  // scrape can never contend with (or race) the lifecycle lock.
  thread_ = std::thread(
      [this, fd, loop_provider = std::move(provider)] { serve(fd, loop_provider); });
  return true;
}

void MetricsHttpServer::stop() {
  std::thread acceptor;
  int fd = -1;
  {
    MutexLock lock(&mutex_);
    if (!running_.load(std::memory_order_acquire)) return;
    // Flip running_ before the join so a concurrent stop() returns here
    // instead of joining a thread handle this caller already owns.
    running_.store(false, std::memory_order_release);
    stop_requested_.store(true, std::memory_order_release);
    acceptor = std::move(thread_);
    fd = listen_fd_;
    listen_fd_ = -1;
  }
  if (acceptor.joinable()) acceptor.join();
  if (fd >= 0) close(fd);
  port_.store(0, std::memory_order_release);
}

void MetricsHttpServer::serve(int listen_fd, const Provider& provider) {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    struct pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = poll(&pfd, 1, kPollMillis);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int conn = accept(listen_fd, nullptr, nullptr);
    if (conn < 0) continue;
    handle_connection(conn, provider);
    close(conn);
  }
}

}  // namespace bgpsim::net
