// Minimal single-threaded HTTP server for Prometheus scrapes. Binds
// loopback, serves GET /metrics with whatever the provider callback returns
// (text/plain; version=0.0.4), answers 404 to anything else. One background
// accept loop handles one connection at a time — it is telemetry plumbing,
// not a web server; a scrape every few seconds is its entire workload.
//
// The simulation engines stay single-threaded: this thread only ever calls
// the provider, which snapshots the lock-free metrics registry.
//
// Lifecycle: start()/stop() may race from any thread (the heartbeat stop
// path, destructors, tests). mutex_ serializes them; the accept loop itself
// never takes the lock — it works on values captured at spawn time plus the
// stop_requested_ atomic, so a scrape can never contend with a stop().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "support/thread_annotations.hpp"

namespace bgpsim::net {

class MetricsHttpServer {
 public:
  /// Returns the exposition body for one scrape.
  using Provider = std::function<std::string()>;

  MetricsHttpServer() = default;
  ~MetricsHttpServer() { stop(); }

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Bind 127.0.0.1:`port` (0 = ephemeral) and spawn the accept loop.
  /// Returns false (without throwing) when the socket cannot be bound or the
  /// server is already running.
  bool start(std::uint16_t port, Provider provider) BGPSIM_EXCLUDES(mutex_);

  /// Shut the listener down and join the thread. Idempotent and safe to
  /// call concurrently: exactly one caller performs the join.
  void stop() BGPSIM_EXCLUDES(mutex_);

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Actual bound port (useful after start(0, ...)); 0 when not running.
  std::uint16_t port() const { return port_.load(std::memory_order_acquire); }

 private:
  /// The accept loop. Owns its parameters by value: the listener fd and the
  /// provider are fixed for the lifetime of one start()/stop() cycle, so the
  /// loop shares nothing guarded with the lifecycle methods.
  void serve(int listen_fd, const Provider& provider);

  Mutex mutex_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint16_t> port_{0};
  int listen_fd_ BGPSIM_GUARDED_BY(mutex_) = -1;
  std::thread thread_ BGPSIM_GUARDED_BY(mutex_);
};

}  // namespace bgpsim::net
