// Minimal single-threaded HTTP server for Prometheus scrapes. Binds
// loopback, serves GET /metrics with whatever the provider callback returns
// (text/plain; version=0.0.4), answers 404 to anything else. One background
// accept loop handles one connection at a time — it is telemetry plumbing,
// not a web server; a scrape every few seconds is its entire workload.
//
// The simulation engines stay single-threaded: this thread only ever calls
// the provider, which snapshots the lock-free metrics registry.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace bgpsim::net {

class MetricsHttpServer {
 public:
  /// Returns the exposition body for one scrape.
  using Provider = std::function<std::string()>;

  MetricsHttpServer() = default;
  ~MetricsHttpServer() { stop(); }

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Bind 127.0.0.1:`port` (0 = ephemeral) and spawn the accept loop.
  /// Returns false (without throwing) when the socket cannot be bound.
  bool start(std::uint16_t port, Provider provider);

  /// Shut the listener down and join the thread. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Actual bound port (useful after start(0, ...)); 0 when not running.
  std::uint16_t port() const { return port_; }

 private:
  void serve();

  Provider provider_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

}  // namespace bgpsim::net
