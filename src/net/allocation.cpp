#include "net/allocation.hpp"

#include <algorithm>
#include <bit>

#include "support/assert.hpp"

namespace bgpsim {

const Prefix& PrefixAllocation::primary(AsId as_id) const {
  BGPSIM_REQUIRE(as_id < by_as.size() && !by_as[as_id].empty(),
                 "AS has no allocated prefix");
  return by_as[as_id].front();
}

std::uint64_t PrefixAllocation::total_slash24() const {
  std::uint64_t total = 0;
  for (const auto& prefixes : by_as) {
    for (const Prefix& p : prefixes) total += p.slash24_count();
  }
  return total;
}

namespace {

/// Buddy allocator over /8 root blocks (1.0.0.0/8, 2.0.0.0/8, ...).
class BuddyPool {
 public:
  /// A free block of exactly `length`; splits or adds root blocks as needed.
  Prefix take(std::uint8_t length) {
    BGPSIM_REQUIRE(length >= 8 && length <= 24, "block length out of [8,24]");
    if (free_[length].empty()) {
      if (length == 8) {
        BGPSIM_REQUIRE(next_root_ <= 223, "IPv4 space exhausted");
        free_[8].push_back(
            Prefix::make(static_cast<std::uint32_t>(next_root_++) << 24, 8));
      } else {
        const Prefix parent = take(length - 1);
        const auto [low, high] = parent.split();
        free_[length].push_back(high);
        return low;
      }
    }
    const Prefix block = free_[length].back();
    free_[length].pop_back();
    return block;
  }

 private:
  std::vector<Prefix> free_[25];
  std::uint32_t next_root_ = 1;
};

/// Block length whose /24 span is the smallest power of two >= weight
/// (clamped to [/8, /24]).
std::uint8_t length_for_weight(std::uint64_t weight) {
  const std::uint64_t clamped = std::clamp<std::uint64_t>(weight, 1, 1u << 16);
  const auto bits = std::bit_width(clamped - 1);  // ceil(log2(clamped))
  const int length = 24 - static_cast<int>(clamped == 1 ? 0 : bits);
  return static_cast<std::uint8_t>(std::clamp(length, 8, 24));
}

}  // namespace

PrefixAllocation allocate_prefixes(const AsGraph& graph) {
  const std::uint32_t n = graph.num_ases();
  PrefixAllocation allocation;
  allocation.by_as.resize(n);

  // Allocate biggest blocks first so the buddy pool never fragments; the
  // order is deterministic (stable sort by weight desc, then AsId).
  std::vector<AsId> order(n);
  for (AsId v = 0; v < n; ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&graph](AsId a, AsId b) {
    const auto wa = graph.address_space(a), wb = graph.address_space(b);
    return wa != wb ? wa > wb : a < b;
  });

  BuddyPool pool;
  for (const AsId v : order) {
    allocation.by_as[v].push_back(pool.take(length_for_weight(graph.address_space(v))));
  }
  return allocation;
}

}  // namespace bgpsim
