// IPv4 prefixes (CIDR) — the address-space substrate behind the paper's
// "96% of the internet address space" accounting and the sub-prefix hijack
// extension (§VIII future work).
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace bgpsim {

/// An IPv4 CIDR prefix. Invariant: all bits below `length` are zero.
class Prefix {
 public:
  constexpr Prefix() = default;

  /// Throws PreconditionError when host bits are set or length > 32.
  static Prefix make(std::uint32_t address, std::uint8_t length);

  /// Parse "a.b.c.d/len"; nullopt on malformed input.
  static std::optional<Prefix> parse(std::string_view text);

  std::uint32_t address() const { return address_; }
  std::uint8_t length() const { return length_; }

  /// Network mask for this length (0 for /0).
  std::uint32_t mask() const {
    return length_ == 0 ? 0 : ~std::uint32_t{0} << (32 - length_);
  }

  /// True when `other` lies inside this prefix (equal or more specific).
  bool contains(const Prefix& other) const {
    return other.length_ >= length_ && (other.address_ & mask()) == address_;
  }

  bool contains_address(std::uint32_t addr) const {
    return (addr & mask()) == address_;
  }

  /// Number of /24-equivalents this prefix spans (0 for longer than /24).
  std::uint64_t slash24_count() const {
    return length_ <= 24 ? (std::uint64_t{1} << (24 - length_)) : 0;
  }

  /// The two halves of this prefix; requires length < 32.
  std::pair<Prefix, Prefix> split() const;

  std::string to_string() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  constexpr Prefix(std::uint32_t address, std::uint8_t length)
      : address_(address), length_(length) {}

  std::uint32_t address_ = 0;
  std::uint8_t length_ = 0;
};

}  // namespace bgpsim
