// Route Origin Authorizations and RFC 6811-style origin validation.
//
// The paper's prevention mechanisms (RPKI, ROVER) boil down to "a secure
// repository of authoritative route origins" consulted by deploying routers.
// This module makes that repository explicit, including the two real-world
// failure modes the abstract model hides:
//   * partial publication — only ASes that published ROAs are protectable
//     (§VII: "Publish route origins. This is a critical step."), and
//   * maxLength slack — a ROA whose maxLength exceeds the announced length
//     validates forged-origin sub-prefix announcements (the classic ROV
//     bypass; see RFC 9319).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/allocation.hpp"
#include "net/prefix.hpp"
#include "net/prefix_trie.hpp"
#include "topology/as_graph.hpp"

namespace bgpsim {

struct Roa {
  Prefix prefix;
  Asn origin = 0;
  std::uint8_t max_length = 0;  ///< longest announcement the ROA authorizes
};

/// RFC 6811 validation states.
enum class RpkiValidity : std::uint8_t {
  NotFound = 0,  ///< no ROA covers the announced prefix
  Valid = 1,     ///< a covering ROA matches origin and length
  Invalid = 2,   ///< covering ROAs exist but none matches
};

constexpr const char* to_string(RpkiValidity validity) {
  switch (validity) {
    case RpkiValidity::NotFound:
      return "not-found";
    case RpkiValidity::Valid:
      return "valid";
    case RpkiValidity::Invalid:
      return "invalid";
  }
  return "?";
}

class RoaDatabase {
 public:
  void add(const Roa& roa);

  /// RFC 6811: the announcement (prefix, origin) is Valid when some covering
  /// ROA has the same origin and max_length >= prefix.length(); Invalid when
  /// covering ROAs exist but none matches; NotFound otherwise.
  RpkiValidity validate(const Prefix& announced, Asn origin) const;

  std::size_t size() const { return trie_.size(); }

 private:
  PrefixTrie<Roa> trie_;
};

/// Publish ROAs for every prefix of `publishers`. `max_length_slack` adds to
/// each prefix's own length (0 = strict, the RFC 9319 recommendation; larger
/// values model operators authorizing their own future de-aggregation, which
/// opens the forged-origin sub-prefix hole).
RoaDatabase publish_roas(const AsGraph& graph, const PrefixAllocation& allocation,
                         std::span<const AsId> publishers,
                         std::uint8_t max_length_slack = 0);

}  // namespace bgpsim
