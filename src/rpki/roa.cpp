#include "rpki/roa.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace bgpsim {

void RoaDatabase::add(const Roa& roa) {
  BGPSIM_REQUIRE(roa.max_length >= roa.prefix.length() && roa.max_length <= 32,
                 "ROA maxLength must be in [prefix length, 32]");
  trie_.insert(roa.prefix, roa);
}

RpkiValidity RoaDatabase::validate(const Prefix& announced, Asn origin) const {
  bool covered = false;
  bool valid = false;
  trie_.for_each_covering(announced, [&](const Roa& roa) {
    covered = true;
    if (roa.origin == origin && roa.max_length >= announced.length()) {
      valid = true;
    }
  });
  if (!covered) return RpkiValidity::NotFound;
  return valid ? RpkiValidity::Valid : RpkiValidity::Invalid;
}

RoaDatabase publish_roas(const AsGraph& graph, const PrefixAllocation& allocation,
                         std::span<const AsId> publishers,
                         std::uint8_t max_length_slack) {
  RoaDatabase db;
  for (const AsId v : publishers) {
    BGPSIM_REQUIRE(v < allocation.by_as.size(), "publisher out of range");
    for (const Prefix& p : allocation.by_as[v]) {
      const auto max_length = static_cast<std::uint8_t>(
          std::min<int>(32, p.length() + max_length_slack));
      db.add(Roa{p, graph.asn(v), max_length});
    }
  }
  return db;
}

}  // namespace bgpsim
