// Scenario: the one-stop entry point of the library.
//
// Bundles a topology (generated, parsed, or injected), its tier
// classification and depth metrics, and the policy configuration, and hands
// out correctly wired simulators and experiment drivers.
//
//   Scenario scenario = Scenario::generate({.total_ases = 8000, .seed = 42});
//   HijackSimulator sim = scenario.make_simulator();
//   auto result = sim.attack(target, attacker);
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hijack/hijack_simulator.hpp"
#include "store/snapshot.hpp"
#include "topology/internet_gen.hpp"
#include "topology/metrics.hpp"

namespace bgpsim {

struct ScenarioParams {
  /// Synthetic-topology parameters (ignored by from_graph/load_caida).
  InternetGenParams topology;

  /// Degree bound for tier-2 classification, expressed at the paper's full
  /// scale (42,697 ASes) and scaled to the actual topology size.
  std::uint32_t tier2_min_degree_full_scale = 120;

  bool tier1_shortest_path = true;
  bool stub_first_hop_filter = false;
  EngineKind engine = EngineKind::Equilibrium;
};

class Scenario {
 public:
  /// Generate a synthetic Internet (deterministic in params.topology.seed).
  static Scenario generate(const ScenarioParams& params);

  /// Wrap an existing graph (sibling links are contracted automatically).
  static Scenario from_graph(AsGraph graph, const ScenarioParams& params);

  /// Load a CAIDA serial-1 relationship file.
  static Scenario load_caida(const std::string& path, const ScenarioParams& params);

  /// Rebuild a scenario from a decoded snapshot. The stored graph was
  /// contracted before it was saved, so no sibling contraction runs; tiers,
  /// depths and the policy configuration are recomputed from the graph and
  /// the snapshot's params (deterministic, so they match the saving run).
  /// The snapshot's baselines are NOT attached here — pass them to
  /// HijackSimulator::attach_baseline (they are shareable across threads).
  static Scenario from_snapshot(const store::Snapshot& snapshot,
                                EngineKind engine = EngineKind::Equilibrium);

  /// The scenario's policy/topology knobs in snapshot form (what
  /// `bgpsim snapshot save` writes next to the graph).
  store::SnapshotParams snapshot_params() const;

  const AsGraph& graph() const { return graph_; }
  const TierClassification& tiers() const { return tiers_; }

  /// Depth per AS, to the nearest tier-1 *or tier-2* (§IV's redefinition).
  const std::vector<std::uint16_t>& depth() const { return depth_; }

  /// Depth per AS to the nearest tier-1 only (the metric's first version).
  const std::vector<std::uint16_t>& depth_tier1_only() const {
    return depth_tier1_only_;
  }

  const std::vector<AsId>& transit() const { return transit_; }

  const PolicyConfig& policy() const { return sim_config_.policy; }
  const SimConfig& sim_config() const { return sim_config_; }

  HijackSimulator make_simulator() const;

  /// The degree threshold corresponding to a full-scale (42,697-AS) value.
  std::uint32_t scaled_degree(std::uint32_t full_scale_value) const;

  /// The AS count corresponding to a full-scale count (e.g. the "62 core").
  std::uint32_t scaled_count(std::uint32_t full_scale_count) const;

 private:
  Scenario(AsGraph graph, const ScenarioParams& params);

  store::SnapshotParams snapshot_params_;
  AsGraph graph_;
  TierClassification tiers_;
  std::vector<std::uint16_t> depth_;
  std::vector<std::uint16_t> depth_tier1_only_;
  std::vector<AsId> transit_;
  SimConfig sim_config_;
};

}  // namespace bgpsim
