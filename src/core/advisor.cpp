#include "core/advisor.hpp"

#include <algorithm>

#include "defense/deployment.hpp"
#include "detect/detector.hpp"
#include "support/assert.hpp"

namespace bgpsim {

namespace {

/// Self-contained simulation context for a (possibly re-homed) graph.
struct LocalContext {
  AsGraph graph;
  TierClassification tiers;
  std::vector<std::uint16_t> depth;
  SimConfig config;

  LocalContext(AsGraph g, const Scenario& base) : graph(std::move(g)) {
    const std::uint32_t tier2_min_degree =
        base.scaled_degree(120);  // same classification rule as Scenario
    tiers = classify_tiers(graph, tier2_min_degree);
    depth = compute_depth(graph, tiers, /*include_tier2=*/true);
    config = base.sim_config();
    config.policy.is_tier1.assign(tiers.is_tier1.begin(), tiers.is_tier1.end());
  }
};

/// Mean regional pollution over an explicit (possibly sampled) attacker list
/// (RegionalAnalyzer::attacks_from_region would sweep the whole region).
double regional_damage(const LocalContext& ctx, AsId target,
                       std::span<const AsId> attackers, const FilterSet* filters) {
  HijackSimulator sim(ctx.graph, ctx.config);
  sim.set_validators(filters != nullptr
                         ? std::optional<ValidatorSet>(filters->bitset())
                         : std::nullopt);
  const std::uint16_t region = ctx.graph.region(target);
  RunningStats damage;
  for (const AsId attacker : attackers) {
    if (attacker == target) continue;
    sim.attack(target, attacker);
    const RouteTable& routes = sim.routes();
    std::uint32_t compromised = 0;
    for (AsId v = 0; v < ctx.graph.num_ases(); ++v) {
      if (ctx.graph.region(v) != region || v == target || v == attacker) continue;
      if (routes.routes[v].origin == Origin::Attacker) ++compromised;
    }
    damage.add(compromised);
  }
  return damage.mean();
}

}  // namespace

SelfInterestAdvisor::SelfInterestAdvisor(const Scenario& scenario)
    : scenario_(scenario) {}

std::vector<AsId> SelfInterestAdvisor::greedy_filters(
    AsId target, std::span<const AsId> attackers, std::span<const AsId> candidates,
    std::size_t k) {
  LocalContext ctx(scenario_.graph(), scenario_);
  FilterSet chosen(ctx.graph.num_ases());
  std::vector<AsId> picked;
  std::vector<AsId> pool(candidates.begin(), candidates.end());

  double current = regional_damage(ctx, target, attackers, &chosen);
  for (std::size_t round = 0; round < k && !pool.empty(); ++round) {
    double best_damage = current;
    std::size_t best_idx = pool.size();
    for (std::size_t i = 0; i < pool.size(); ++i) {
      FilterSet trial = chosen;
      trial.add(pool[i]);
      const double damage = regional_damage(ctx, target, attackers, &trial);
      if (damage < best_damage ||
          (best_idx == pool.size() && damage < current)) {
        best_damage = damage;
        best_idx = i;
      }
    }
    if (best_idx == pool.size() || best_damage >= current) break;  // no gain
    chosen.add(pool[best_idx]);
    picked.push_back(pool[best_idx]);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(best_idx));
    current = best_damage;
  }
  return picked;
}

std::vector<AsId> SelfInterestAdvisor::greedy_probes(
    AsId target, std::span<const AsId> attackers, std::size_t k) {
  const AsGraph& graph = scenario_.graph();
  HijackSimulator sim = scenario_.make_simulator();

  // Detection matrix: per candidate probe, a bitmask over sampled attacks.
  const std::size_t n_attacks = attackers.size();
  const std::size_t words = (n_attacks + 63) / 64;
  const auto candidates = transit_ases(graph);
  std::vector<std::vector<std::uint64_t>> covers(
      candidates.size(), std::vector<std::uint64_t>(words, 0));
  std::vector<std::size_t> candidate_index(graph.num_ases(), candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    candidate_index[candidates[i]] = i;
  }

  std::size_t attack_no = 0;
  for (const AsId attacker : attackers) {
    if (attacker == target) {
      ++attack_no;
      continue;
    }
    sim.attack(target, attacker);
    const RouteTable& routes = sim.routes();
    for (const AsId c : candidates) {
      if (routes.routes[c].origin == Origin::Attacker) {
        covers[candidate_index[c]][attack_no / 64] |= 1ULL << (attack_no % 64);
      }
    }
    ++attack_no;
  }

  // Greedy max-coverage.
  std::vector<std::uint64_t> covered(words, 0);
  std::vector<AsId> picked;
  for (std::size_t round = 0; round < k; ++round) {
    std::size_t best_gain = 0;
    std::size_t best_idx = candidates.size();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      std::size_t gain = 0;
      for (std::size_t w = 0; w < words; ++w) {
        gain += static_cast<std::size_t>(
            __builtin_popcountll(covers[i][w] & ~covered[w]));
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_idx = i;
      }
    }
    if (best_idx == candidates.size() || best_gain == 0) break;
    for (std::size_t w = 0; w < words; ++w) covered[w] |= covers[best_idx][w];
    picked.push_back(candidates[best_idx]);
  }
  return picked;
}

AdvisorReport SelfInterestAdvisor::advise(AsId target, const AdvisorBudget& budget,
                                          Rng& rng) {
  const AsGraph& graph = scenario_.graph();
  BGPSIM_REQUIRE(target < graph.num_ases(), "target out of range");

  AdvisorReport report;
  report.target = target;
  report.target_asn = graph.asn(target);
  report.region = graph.region(target);
  report.depth_before = scenario_.depth()[target];
  report.depth_after = report.depth_before;

  // Attacker sample: the target's whole region (capped), the §VII workload.
  std::vector<AsId> attackers = graph.ases_in_region(report.region);
  attackers.erase(std::remove(attackers.begin(), attackers.end(), target),
                  attackers.end());
  report.region_size = static_cast<std::uint32_t>(attackers.size());
  if (attackers.size() > budget.attack_sample) {
    attackers = rng.sample_without_replacement(attackers, budget.attack_sample);
  }

  // Step 0: baseline.
  LocalContext base_ctx(graph, scenario_);
  const double base_damage = regional_damage(base_ctx, target, attackers, nullptr);
  report.steps.push_back(
      {"baseline (no action)", base_damage,
       report.region_size ? base_damage / report.region_size : 0.0});

  // Step 1: re-home upward to reduce depth.
  AsGraph working = graph;
  if (budget.rehome_levels > 0 && report.depth_before > 1) {
    working = rehome_up(graph, graph.asn(target), scenario_.depth(),
                        budget.rehome_levels);
  }
  LocalContext ctx(working, scenario_);
  report.depth_after = ctx.depth[ctx.graph.require(report.target_asn)];
  const AsId new_target = ctx.graph.require(report.target_asn);
  // Re-map attacker ids into the re-homed graph (ASNs are stable).
  std::vector<AsId> mapped;
  mapped.reserve(attackers.size());
  for (const AsId a : attackers) mapped.push_back(ctx.graph.require(graph.asn(a)));

  const double rehomed = regional_damage(ctx, new_target, mapped, nullptr);
  report.steps.push_back(
      {"re-home " + std::to_string(budget.rehome_levels) + " levels up (depth " +
           std::to_string(report.depth_before) + " -> " +
           std::to_string(report.depth_after) + ")",
       rehomed, report.region_size ? rehomed / report.region_size : 0.0});

  // Steps 2-4: publish origins + greedy strategic filters (on the re-homed graph).
  std::vector<AsId> candidates;
  for (const AsId t : transit_ases(ctx.graph)) {
    if (ctx.graph.region(t) == report.region) candidates.push_back(t);
  }
  for (const auto& nbr : ctx.graph.neighbors(new_target)) {
    if (nbr.rel == Rel::Provider) candidates.push_back(nbr.id);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  FilterSet filters(ctx.graph.num_ases());
  {
    std::vector<AsId> picked;
    double current = rehomed;
    std::vector<AsId> pool = candidates;
    for (std::uint32_t round = 0; round < budget.max_filters && !pool.empty();
         ++round) {
      double best_damage = current;
      std::size_t best_idx = pool.size();
      for (std::size_t i = 0; i < pool.size(); ++i) {
        FilterSet trial = filters;
        trial.add(pool[i]);
        const double damage = regional_damage(ctx, new_target, mapped, &trial);
        if (damage < best_damage) {
          best_damage = damage;
          best_idx = i;
        }
      }
      if (best_idx == pool.size()) break;
      filters.add(pool[best_idx]);
      picked.push_back(pool[best_idx]);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(best_idx));
      current = best_damage;
    }
    for (const AsId f : picked) report.recommended_filters.push_back(ctx.graph.asn(f));
    report.steps.push_back(
        {"publish origins + filter at " + std::to_string(picked.size()) +
             " strategic ASes",
         current, report.region_size ? current / report.region_size : 0.0});
  }

  // Step 5: detection with greedy probe placement, accounting blind spots.
  {
    HijackSimulator sim(ctx.graph, ctx.config);
    sim.set_validators(std::optional<ValidatorSet>(filters.bitset()));
    const auto probe_candidates = transit_ases(ctx.graph);
    std::vector<std::uint8_t> detected(mapped.size(), 0);
    std::vector<std::vector<std::uint32_t>> polluted_probes(mapped.size());
    for (std::size_t i = 0; i < mapped.size(); ++i) {
      if (mapped[i] == new_target) continue;
      sim.attack(new_target, mapped[i]);
      const RouteTable& routes = sim.routes();
      for (const AsId c : probe_candidates) {
        if (routes.routes[c].origin == Origin::Attacker) {
          polluted_probes[i].push_back(c);
        }
      }
    }
    // Greedy max coverage over attacks that polluted anyone at all.
    std::vector<AsId> probes;
    for (std::uint32_t round = 0; round < budget.max_probes; ++round) {
      std::size_t best_gain = 0;
      AsId best_probe = kInvalidAs;
      for (const AsId c : probe_candidates) {
        std::size_t gain = 0;
        for (std::size_t i = 0; i < mapped.size(); ++i) {
          if (detected[i]) continue;
          if (std::find(polluted_probes[i].begin(), polluted_probes[i].end(), c) !=
              polluted_probes[i].end()) {
            ++gain;
          }
        }
        if (gain > best_gain) {
          best_gain = gain;
          best_probe = c;
        }
      }
      if (best_probe == kInvalidAs) break;
      probes.push_back(best_probe);
      for (std::size_t i = 0; i < mapped.size(); ++i) {
        if (!detected[i] &&
            std::find(polluted_probes[i].begin(), polluted_probes[i].end(),
                      best_probe) != polluted_probes[i].end()) {
          detected[i] = 1;
        }
      }
    }
    std::uint32_t harmful = 0, missed = 0;
    for (std::size_t i = 0; i < mapped.size(); ++i) {
      if (polluted_probes[i].empty()) continue;  // attack polluted nobody
      ++harmful;
      if (!detected[i]) ++missed;
    }
    report.detection_miss_rate =
        harmful == 0 ? 0.0 : static_cast<double>(missed) / harmful;
    for (const AsId p : probes) report.recommended_probes.push_back(ctx.graph.asn(p));
  }

  return report;
}

}  // namespace bgpsim
