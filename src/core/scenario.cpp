#include "core/scenario.hpp"

#include "topology/caida_parser.hpp"
#include "topology/sibling_contraction.hpp"

namespace bgpsim {

Scenario Scenario::generate(const ScenarioParams& params) {
  return from_graph(generate_internet(params.topology), params);
}

Scenario Scenario::from_graph(AsGraph graph, const ScenarioParams& params) {
  auto contracted = contract_siblings(graph);
  return Scenario(std::move(contracted.graph), params);
}

Scenario Scenario::load_caida(const std::string& path, const ScenarioParams& params) {
  return from_graph(load_caida_file(path), params);
}

Scenario Scenario::from_snapshot(const store::Snapshot& snapshot,
                                 EngineKind engine) {
  ScenarioParams params;
  params.tier2_min_degree_full_scale =
      snapshot.params.tier2_min_degree_full_scale;
  params.tier1_shortest_path = snapshot.params.tier1_shortest_path;
  params.stub_first_hop_filter = snapshot.params.stub_first_hop_filter;
  params.engine = engine;
  params.topology.seed = snapshot.params.seed;
  params.topology.total_ases = snapshot.params.scale;
  // The saved graph is already sibling-contracted — construct directly
  // instead of via from_graph, so the reloaded graph stays field-identical
  // (re-saving reproduces the snapshot's topology bytes).
  return Scenario(AsGraph(snapshot.graph), params);
}

store::SnapshotParams Scenario::snapshot_params() const {
  return snapshot_params_;
}

Scenario::Scenario(AsGraph graph, const ScenarioParams& params)
    : graph_(std::move(graph)) {
  snapshot_params_.tier2_min_degree_full_scale = params.tier2_min_degree_full_scale;
  snapshot_params_.tier1_shortest_path = params.tier1_shortest_path;
  snapshot_params_.stub_first_hop_filter = params.stub_first_hop_filter;
  snapshot_params_.seed = params.topology.seed;
  snapshot_params_.scale = params.topology.total_ases;
  const std::uint32_t tier2_min_degree = scale_degree_threshold(
      graph_.num_ases(), params.tier2_min_degree_full_scale);
  tiers_ = classify_tiers(graph_, tier2_min_degree);
  depth_ = compute_depth(graph_, tiers_, /*include_tier2=*/true);
  depth_tier1_only_ = compute_depth(graph_, tiers_, /*include_tier2=*/false);
  transit_ = transit_ases(graph_);

  sim_config_.engine = params.engine;
  sim_config_.policy.tier1_shortest_path = params.tier1_shortest_path;
  sim_config_.policy.stub_first_hop_filter = params.stub_first_hop_filter;
  sim_config_.policy.is_tier1.assign(tiers_.is_tier1.begin(), tiers_.is_tier1.end());
}

HijackSimulator Scenario::make_simulator() const {
  return HijackSimulator(graph_, sim_config_);
}

std::uint32_t Scenario::scaled_degree(std::uint32_t full_scale_value) const {
  return scale_degree_threshold(graph_.num_ases(), full_scale_value);
}

std::uint32_t Scenario::scaled_count(std::uint32_t full_scale_count) const {
  return scale_count(graph_.num_ases(), full_scale_count);
}

}  // namespace bgpsim
