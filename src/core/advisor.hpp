// §VII "pragmatic self-interest actions" as an API.
//
// The paper proposes a playbook an AS owner can run unilaterally:
//   1. analyze the relevant AS topology (depth = vulnerability proxy),
//   2. reduce vulnerability (re-home / multi-home),
//   3. publish route origins (modeled as enabling filters/detectors),
//   4. build prefix filters at strategic ASes,
//   5. use detection and check it for blind spots.
//
// SelfInterestAdvisor quantifies each step for a concrete target: it
// simulates the baseline, evaluates a re-homing transform, greedily places a
// filter/probe budget, and reports the measured improvement of every step.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/regional.hpp"
#include "core/scenario.hpp"
#include "detect/probe_set.hpp"

namespace bgpsim {

struct AdvisorBudget {
  int rehome_levels = 2;          ///< how far up to re-home (0 = skip)
  std::uint32_t max_filters = 3;  ///< prefix filters we can convince ASes to run
  std::uint32_t max_probes = 8;   ///< detector peers we can establish
  std::uint32_t attack_sample = 200;  ///< Monte-Carlo attacks per evaluation
};

struct AdvisorStep {
  std::string action;       ///< human-readable recommendation
  double regional_damage;   ///< mean compromised ASes in the target's region
  double regional_fraction; ///< same, as a fraction of the region
};

struct AdvisorReport {
  AsId target = kInvalidAs;
  Asn target_asn = 0;
  std::uint16_t depth_before = 0;
  std::uint16_t depth_after = 0;
  std::uint16_t region = 0;
  std::uint32_t region_size = 0;

  /// Baseline, then one entry per applied step (monotone improvements).
  std::vector<AdvisorStep> steps;

  /// Strategic filter ASes chosen greedily (ASNs).
  std::vector<Asn> recommended_filters;

  /// Probe ASes that cover the sampled attacks (ASNs), and the residual
  /// blind-spot rate of that probe set.
  std::vector<Asn> recommended_probes;
  double detection_miss_rate = 1.0;
};

class SelfInterestAdvisor {
 public:
  explicit SelfInterestAdvisor(const Scenario& scenario);

  /// Run the full playbook for one target AS.
  AdvisorReport advise(AsId target, const AdvisorBudget& budget, Rng& rng);

  /// Greedy filter placement: choose up to `k` transit ASes whose origin
  /// validation most reduces mean regional pollution of `target` under the
  /// sampled attacker set.
  std::vector<AsId> greedy_filters(AsId target, std::span<const AsId> attackers,
                                   std::span<const AsId> candidates, std::size_t k);

  /// Greedy probe placement: choose up to `k` probe ASes maximizing the
  /// number of sampled attacks detected (attacks on `target`).
  std::vector<AsId> greedy_probes(AsId target, std::span<const AsId> attackers,
                                  std::size_t k);

 private:
  const Scenario& scenario_;
};

}  // namespace bgpsim
