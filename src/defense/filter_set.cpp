#include "defense/filter_set.hpp"

#include "support/assert.hpp"

namespace bgpsim {

void FilterSet::add(AsId as_id) {
  BGPSIM_REQUIRE(as_id < bits_.size(), "FilterSet::add out of range");
  if (bits_[as_id] == 0) {
    bits_[as_id] = 1;
    ++count_;
  }
}

void FilterSet::add_all(std::span<const AsId> deployers) {
  for (const AsId as_id : deployers) add(as_id);
}

void FilterSet::remove(AsId as_id) {
  BGPSIM_REQUIRE(as_id < bits_.size(), "FilterSet::remove out of range");
  if (bits_[as_id] != 0) {
    bits_[as_id] = 0;
    --count_;
  }
}

std::vector<AsId> FilterSet::members() const {
  std::vector<AsId> out;
  out.reserve(count_);
  for (AsId v = 0; v < bits_.size(); ++v) {
    if (bits_[v] != 0) out.push_back(v);
  }
  return out;
}

}  // namespace bgpsim
