// The incremental deployment strategies compared in §V of the paper:
// random ASes, the tier-1 clique, and degree-threshold cores.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "defense/filter_set.hpp"
#include "support/rng.hpp"
#include "topology/metrics.hpp"

namespace bgpsim {

/// A named set of deploying ASes, as compared in figures 5 and 6.
struct DeploymentPlan {
  std::string label;
  std::vector<AsId> deployers;
};

/// "Random Deployment": `count` ASes drawn uniformly from the transit ASes
/// (the paper's random curves draw from transit ASes — stubs can also
/// deploy, but blocking at stubs protects nobody else).
DeploymentPlan random_transit_deployment(const AsGraph& graph, std::uint32_t count,
                                         Rng& rng);

/// "filter 17 tier-1 ASes".
DeploymentPlan tier1_deployment(const TierClassification& tiers);

/// "filter N ASes with degree >= d".
DeploymentPlan degree_threshold_deployment(const AsGraph& graph,
                                           std::uint32_t min_degree);

/// Top-k by degree — the scale-invariant analogue of a degree threshold,
/// used when the topology is smaller than the paper's 42,697 ASes.
DeploymentPlan top_k_deployment(const AsGraph& graph, std::size_t k);

/// Custom plan from explicit members.
DeploymentPlan custom_deployment(std::string label, std::vector<AsId> deployers);

/// Materialize a plan into the engine-facing filter set.
FilterSet to_filter_set(const AsGraph& graph, const DeploymentPlan& plan);

}  // namespace bgpsim
