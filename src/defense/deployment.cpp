#include "defense/deployment.hpp"

#include "support/assert.hpp"

namespace bgpsim {

DeploymentPlan random_transit_deployment(const AsGraph& graph, std::uint32_t count,
                                         Rng& rng) {
  const auto transits = transit_ases(graph);
  BGPSIM_REQUIRE(count <= transits.size(),
                 "random deployment larger than the transit population");
  DeploymentPlan plan;
  plan.label = "random " + std::to_string(count);
  plan.deployers = rng.sample_without_replacement(transits, count);
  return plan;
}

DeploymentPlan tier1_deployment(const TierClassification& tiers) {
  DeploymentPlan plan;
  plan.label = std::to_string(tiers.tier1.size()) + " tier-1 ASes";
  plan.deployers = tiers.tier1;
  return plan;
}

DeploymentPlan degree_threshold_deployment(const AsGraph& graph,
                                           std::uint32_t min_degree) {
  DeploymentPlan plan;
  plan.deployers = ases_with_degree_at_least(graph, min_degree);
  plan.label = std::to_string(plan.deployers.size()) + " ASes with degree >= " +
               std::to_string(min_degree);
  return plan;
}

DeploymentPlan top_k_deployment(const AsGraph& graph, std::size_t k) {
  DeploymentPlan plan;
  plan.deployers = top_k_by_degree(graph, k);
  plan.label = "top " + std::to_string(plan.deployers.size()) + " by degree";
  return plan;
}

DeploymentPlan custom_deployment(std::string label, std::vector<AsId> deployers) {
  return DeploymentPlan{std::move(label), std::move(deployers)};
}

FilterSet to_filter_set(const AsGraph& graph, const DeploymentPlan& plan) {
  FilterSet filters(graph.num_ases());
  filters.add_all(plan.deployers);
  return filters;
}

}  // namespace bgpsim
