// Origin-validation deployment: the set of ASes that check BGP origins
// against a secure repository (RPKI / ROVER) and drop bogus routes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bgp/types.hpp"
#include "topology/as_graph.hpp"

namespace bgpsim {

class FilterSet {
 public:
  /// Empty deployment over a topology of `num_ases` ASes.
  explicit FilterSet(std::uint32_t num_ases) : bits_(num_ases, 0) {}

  FilterSet(std::uint32_t num_ases, std::span<const AsId> deployers)
      : FilterSet(num_ases) {
    add_all(deployers);
  }

  void add(AsId as_id);
  void add_all(std::span<const AsId> deployers);
  void remove(AsId as_id);

  bool contains(AsId as_id) const { return bits_[as_id] != 0; }
  std::uint32_t count() const { return count_; }
  std::uint32_t universe_size() const { return static_cast<std::uint32_t>(bits_.size()); }

  /// Deployed ASes in ascending id order.
  std::vector<AsId> members() const;

  /// Per-AS flag vector consumed by the routing engines.
  const ValidatorSet& bitset() const { return bits_; }

 private:
  ValidatorSet bits_;
  std::uint32_t count_ = 0;
};

}  // namespace bgpsim
