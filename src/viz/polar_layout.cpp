#include "viz/polar_layout.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace bgpsim {

double PolarLayout::x(AsId v) const {
  return points[v].radius * std::cos(points[v].angle);
}

double PolarLayout::y(AsId v) const {
  return points[v].radius * std::sin(points[v].angle);
}

PolarLayout polar_layout(const AsGraph& graph,
                         const std::vector<std::uint16_t>& depth) {
  const std::uint32_t n = graph.num_ases();
  BGPSIM_REQUIRE(depth.size() == n, "depth vector size mismatch");

  PolarLayout layout;
  layout.points.resize(n);
  for (AsId v = 0; v < n; ++v) {
    if (depth[v] != kUnreachableDepth) {
      layout.max_depth = std::max(layout.max_depth, depth[v]);
    }
  }

  // Angular order: iterative DFS over provider->customer links, seeded from
  // the depth-0 roots in ascending id, so each customer cone occupies a
  // contiguous slice of the perimeter.
  std::vector<AsId> order;
  order.reserve(n);
  std::vector<std::uint8_t> seen(n, 0);
  std::vector<AsId> stack;
  for (AsId v = 0; v < n; ++v) {
    if (depth[v] == 0 && !seen[v]) {
      stack.push_back(v);
      seen[v] = 1;
      while (!stack.empty()) {
        const AsId u = stack.back();
        stack.pop_back();
        order.push_back(u);
        // Push customers in reverse so the lowest id is visited first.
        const auto nbrs = graph.neighbors(u);
        for (std::size_t k = nbrs.size(); k-- > 0;) {
          if (nbrs[k].rel == Rel::Customer && !seen[nbrs[k].id]) {
            seen[nbrs[k].id] = 1;
            stack.push_back(nbrs[k].id);
          }
        }
      }
    }
  }
  for (AsId v = 0; v < n; ++v) {  // disconnected leftovers, if any
    if (!seen[v]) order.push_back(v);
  }

  const double two_pi = 2.0 * std::numbers::pi;
  const double step = two_pi / static_cast<double>(n);
  std::uint32_t max_degree = 1;
  for (AsId v = 0; v < n; ++v) max_degree = std::max(max_degree, graph.degree(v));

  Rng jitter(0x1a1a5eedULL);  // deterministic scatter within rings
  const auto rings = static_cast<double>(layout.max_depth + 1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const AsId v = order[i];
    PolarPoint& point = layout.points[v];
    point.angle = step * static_cast<double>(i);

    const double d = depth[v] == kUnreachableDepth
                         ? 0.0
                         : static_cast<double>(depth[v]);
    // Highest depth in the center: ring index counts down from the rim.
    const double ring_outer = (rings - d) / rings;
    const double ring_width = 1.0 / rings;
    // Higher degree -> towards the inner edge of the ring.
    const double degree_bias =
        std::log2(1.0 + graph.degree(v)) / std::log2(1.0 + max_degree);
    const double scatter = 0.25 * ring_width * (jitter.uniform() - 0.5);
    point.radius = std::clamp(
        ring_outer - ring_width * (0.2 + 0.6 * degree_bias) + scatter, 0.02, 1.0);
    point.size = std::sqrt(static_cast<double>(graph.address_space(v)));
  }
  return layout;
}

}  // namespace bgpsim
