#include "viz/svg.hpp"

#include <fstream>

#include "support/error.hpp"

namespace bgpsim {

SvgDocument::SvgDocument(double width, double height)
    : width_(width), height_(height) {}

void SvgDocument::circle(double cx, double cy, double r, const std::string& fill,
                         double opacity) {
  body_ << "<circle cx=\"" << cx << "\" cy=\"" << cy << "\" r=\"" << r
        << "\" fill=\"" << escape(fill) << "\" fill-opacity=\"" << opacity
        << "\"/>\n";
}

void SvgDocument::line(double x1, double y1, double x2, double y2,
                       const std::string& stroke, double stroke_width,
                       double opacity) {
  body_ << "<line x1=\"" << x1 << "\" y1=\"" << y1 << "\" x2=\"" << x2
        << "\" y2=\"" << y2 << "\" stroke=\"" << escape(stroke)
        << "\" stroke-width=\"" << stroke_width << "\" stroke-opacity=\""
        << opacity << "\"/>\n";
}

void SvgDocument::text(double x, double y, const std::string& content,
                       const std::string& fill, double font_size) {
  body_ << "<text x=\"" << x << "\" y=\"" << y << "\" fill=\"" << escape(fill)
        << "\" font-size=\"" << font_size
        << "\" font-family=\"sans-serif\">" << escape(content) << "</text>\n";
}

void SvgDocument::ring(double cx, double cy, double r, const std::string& stroke,
                       double stroke_width) {
  body_ << "<circle cx=\"" << cx << "\" cy=\"" << cy << "\" r=\"" << r
        << "\" fill=\"none\" stroke=\"" << escape(stroke) << "\" stroke-width=\""
        << stroke_width << "\"/>\n";
}

std::string SvgDocument::str() const {
  std::ostringstream out;
  out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_
      << "\" height=\"" << height_ << "\" viewBox=\"0 0 " << width_ << ' '
      << height_ << "\">\n"
      << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n"
      << body_.str() << "</svg>\n";
  return out.str();
}

void SvgDocument::save(const std::string& path) const {
  std::ofstream file(path);
  if (!file) throw Error("cannot open SVG output file: " + path);
  file << str();
}

std::string SvgDocument::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace bgpsim
