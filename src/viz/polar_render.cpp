#include "viz/polar_render.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "support/error.hpp"
#include "viz/svg.hpp"

namespace bgpsim {

namespace {

struct Mapper {
  double size;
  double cx() const { return size / 2.0; }
  double cy() const { return size / 2.0; }
  double scale() const { return size * 0.46; }
  double x(const PolarLayout& layout, AsId v) const {
    return cx() + layout.x(v) * scale();
  }
  double y(const PolarLayout& layout, AsId v) const {
    return cy() + layout.y(v) * scale();
  }
};

}  // namespace

std::string render_polar_frame(const AsGraph& graph, const PolarLayout& layout,
                               const GenerationFrame& frame,
                               const std::vector<std::uint8_t>& polluted,
                               const PolarRenderOptions& options) {
  const Mapper map{options.size_px};
  SvgDocument svg(options.size_px, options.size_px);

  if (options.draw_rings) {
    const auto rings = static_cast<double>(layout.max_depth + 1);
    for (std::uint16_t d = 0; d <= layout.max_depth; ++d) {
      svg.ring(map.cx(), map.cy(), map.scale() * (rings - d) / rings, "#dddddd");
    }
  }

  if (options.draw_edges) {
    for (const TraceEdge& edge : frame.edges) {
      svg.line(map.x(layout, edge.from), map.y(layout, edge.from),
               map.x(layout, edge.to), map.y(layout, edge.to),
               edge.accepted ? "#cc2222" : "#2a9d2a", 0.6,
               edge.accepted ? 0.8 : 0.45);
    }
  }

  double max_size = 1.0;
  for (const auto& point : layout.points) max_size = std::max(max_size, point.size);
  for (AsId v = 0; v < graph.num_ases(); ++v) {
    const double r =
        0.8 + options.max_marker_px * layout.points[v].size / max_size;
    const bool bad = v < polluted.size() && polluted[v] != 0;
    svg.circle(map.x(layout, v), map.y(layout, v), bad ? r : r * 0.8,
               bad ? "#cc2222" : "#9a9a9a", bad ? 0.9 : 0.35);
  }

  svg.text(12, 22,
           options.title + " generation " + std::to_string(frame.generation) +
               " — polluted: " + std::to_string(frame.polluted_so_far),
           "#222", 15);
  return svg.str();
}

std::vector<std::string> render_polar_trace(const AsGraph& graph,
                                            const PolarLayout& layout,
                                            const PropagationTrace& trace,
                                            const RouteTable& final_routes,
                                            const std::string& path_prefix,
                                            const PolarRenderOptions& options) {
  // Reconstruct per-generation pollution by replaying accepted deliveries.
  // An AS counts as polluted in frame g if the final route table marks it
  // polluted and its first accepted delivery happened at or before g — a
  // close approximation that avoids storing per-frame route tables.
  std::vector<std::uint32_t> first_accept(graph.num_ases(), 0xffffffffu);
  for (const auto& frame : trace.frames) {
    for (const TraceEdge& edge : frame.edges) {
      if (edge.accepted && first_accept[edge.to] == 0xffffffffu) {
        first_accept[edge.to] = frame.generation;
      }
    }
  }

  std::vector<std::string> files;
  std::vector<std::uint8_t> polluted(graph.num_ases(), 0);
  for (const auto& frame : trace.frames) {
    for (AsId v = 0; v < graph.num_ases(); ++v) {
      polluted[v] = (final_routes.routes[v].origin == Origin::Attacker &&
                     first_accept[v] <= frame.generation)
                        ? 1
                        : 0;
    }
    const std::string name = path_prefix + "_gen" +
                             (frame.generation < 10 ? "0" : "") +
                             std::to_string(frame.generation) + ".svg";
    const std::string svg =
        render_polar_frame(graph, layout, frame, polluted, options);
    std::ofstream file(name);
    if (!file) throw Error("cannot open SVG output file: " + name);
    file << svg;
    files.push_back(name);
  }
  return files;
}

}  // namespace bgpsim
