// Polar layout of an AS topology, after the paper's figure 1:
// "an AS's longitude is plotted along the graph perimeter, and the AS depth
//  is plotted along the radius ... The size of an AS circle indicates the
//  amount of address space an AS owns. AS degree is shown by scattering
//  within a concentric circle: higher degree ASes are towards the center."
#pragma once

#include <cstdint>
#include <vector>

#include "topology/as_graph.hpp"
#include "topology/metrics.hpp"

namespace bgpsim {

struct PolarPoint {
  double angle = 0.0;   ///< radians in [0, 2*pi)
  double radius = 0.0;  ///< 0 (deepest ring center) .. 1 (perimeter)
  double size = 1.0;    ///< marker radius hint (sqrt of address space)
};

struct PolarLayout {
  std::vector<PolarPoint> points;  ///< indexed by AsId
  std::uint16_t max_depth = 0;

  double x(AsId v) const;  ///< in [-1, 1]
  double y(AsId v) const;
};

/// Compute the layout: angles follow a DFS over the provider->customer
/// forest rooted at the tier-1 clique (so customer cones stay angularly
/// contiguous); the radius encodes depth — *highest* depth in the center —
/// with a within-ring inward bias for high-degree ASes.
PolarLayout polar_layout(const AsGraph& graph,
                         const std::vector<std::uint16_t>& depth);

}  // namespace bgpsim
