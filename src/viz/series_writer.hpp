// Gnuplot/pandas-friendly CSV emitters for experiment outputs.
#pragma once

#include <string>
#include <vector>

#include "analysis/deployment_experiment.hpp"
#include "analysis/detector_experiment.hpp"
#include "analysis/vulnerability.hpp"

namespace bgpsim {

/// One CCDF curve: columns pollution_threshold,attacker_count.
void write_ccdf_csv(const std::string& path, const VulnerabilityCurve& curve);

/// Several labeled curves in long format: label,pollution_threshold,count.
void write_ccdf_family_csv(const std::string& path,
                           const std::vector<VulnerabilityCurve>& curves);

/// Deployment comparison (figures 5/6): label,deployed,avg,max,attackers_over.
void write_deployment_csv(const std::string& path,
                          const std::vector<DeploymentOutcome>& outcomes,
                          std::uint32_t over_threshold);

/// Figure 7 histogram: label,probes_triggered,attacks,avg_pollution.
void write_detector_csv(const std::string& path,
                        const std::vector<DetectorCaseResult>& cases);

}  // namespace bgpsim
