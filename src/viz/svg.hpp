// Minimal SVG document writer (no external dependencies) for the polar
// propagation figures.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace bgpsim {

class SvgDocument {
 public:
  SvgDocument(double width, double height);

  void circle(double cx, double cy, double r, const std::string& fill,
              double opacity = 1.0);
  void line(double x1, double y1, double x2, double y2, const std::string& stroke,
            double stroke_width = 1.0, double opacity = 1.0);
  void text(double x, double y, const std::string& content,
            const std::string& fill = "#333", double font_size = 12.0);
  void ring(double cx, double cy, double r, const std::string& stroke,
            double stroke_width = 0.5);

  /// Finish the document and return the full SVG text.
  std::string str() const;

  /// Write to a file; throws bgpsim::Error when the file can't be opened.
  void save(const std::string& path) const;

 private:
  static std::string escape(const std::string& raw);

  double width_;
  double height_;
  std::ostringstream body_;
};

}  // namespace bgpsim
