// Renders the paper's figure-1 polar propagation frames: one SVG per
// generation, bogus-route deliveries in red (accepted) and green (rejected),
// polluted ASes highlighted.
#pragma once

#include <string>
#include <vector>

#include "bgp/generation_engine.hpp"
#include "bgp/types.hpp"
#include "viz/polar_layout.hpp"

namespace bgpsim {

struct PolarRenderOptions {
  double size_px = 900.0;
  double max_marker_px = 6.0;
  bool draw_rings = true;
  bool draw_edges = true;
  std::string title;
};

/// Render one frame of a propagation trace. `polluted` marks ASes currently
/// selecting the bogus route (filled red); everything else is gray.
std::string render_polar_frame(const AsGraph& graph, const PolarLayout& layout,
                               const GenerationFrame& frame,
                               const std::vector<std::uint8_t>& polluted,
                               const PolarRenderOptions& options);

/// Render the whole trace to numbered SVG files
/// (`<prefix>_gen01.svg`, ...); returns the file names written.
std::vector<std::string> render_polar_trace(const AsGraph& graph,
                                            const PolarLayout& layout,
                                            const PropagationTrace& trace,
                                            const RouteTable& final_routes,
                                            const std::string& path_prefix,
                                            const PolarRenderOptions& options);

}  // namespace bgpsim
