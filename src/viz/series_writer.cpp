#include "viz/series_writer.hpp"

#include "support/csv.hpp"

namespace bgpsim {

void write_ccdf_csv(const std::string& path, const VulnerabilityCurve& curve) {
  CsvWriter csv(path);
  csv.row({"pollution_threshold", "attackers_at_least"});
  for (const CcdfPoint& point : curve.curve) {
    csv.field(point.threshold).field(point.count);
    csv.end_row();
  }
}

void write_ccdf_family_csv(const std::string& path,
                           const std::vector<VulnerabilityCurve>& curves) {
  CsvWriter csv(path);
  csv.row({"label", "pollution_threshold", "attackers_at_least"});
  for (const VulnerabilityCurve& curve : curves) {
    for (const CcdfPoint& point : curve.curve) {
      csv.field(std::string_view{curve.label}).field(point.threshold).field(point.count);
      csv.end_row();
    }
  }
}

void write_deployment_csv(const std::string& path,
                          const std::vector<DeploymentOutcome>& outcomes,
                          std::uint32_t over_threshold) {
  CsvWriter csv(path);
  csv.row({"label", "deployed_ases", "avg_pollution", "max_pollution",
           "attackers_over_threshold"});
  for (const DeploymentOutcome& outcome : outcomes) {
    csv.field(std::string_view{outcome.label})
        .field(std::uint64_t{outcome.deployed_ases})
        .field(outcome.curve.stats.mean())
        .field(outcome.curve.stats.max())
        .field(std::uint64_t{outcome.curve.attackers_at_least(over_threshold)});
    csv.end_row();
  }
}

void write_detector_csv(const std::string& path,
                        const std::vector<DetectorCaseResult>& cases) {
  CsvWriter csv(path);
  csv.row({"label", "probes_triggered", "attacks", "avg_pollution"});
  for (const DetectorCaseResult& result : cases) {
    for (std::size_t k = 0; k < result.histogram.size(); ++k) {
      csv.field(std::string_view{result.label})
          .field(std::uint64_t{k})
          .field(std::uint64_t{result.histogram[k]})
          .field(result.avg_pollution_by_triggered[k]);
      csv.end_row();
    }
  }
}

}  // namespace bgpsim
