#include "detect/detector.hpp"

#include "support/assert.hpp"

namespace bgpsim {

DetectionOutcome evaluate_detection(const RouteTable& routes,
                                    const ProbeSet& probes) {
  DetectionOutcome outcome;
  for (const AsId probe : probes.probes()) {
    BGPSIM_REQUIRE(probe < routes.routes.size(), "probe outside route table");
    if (routes.routes[probe].origin == Origin::Attacker) {
      ++outcome.probes_triggered;
    }
  }
  return outcome;
}

DetectionOutcome evaluate_detection_heard(const GenerationEngine& engine,
                                          const ProbeSet& probes) {
  DetectionOutcome outcome;
  for (const AsId probe : probes.probes()) {
    BGPSIM_REQUIRE(probe < engine.graph().num_ases(), "probe outside topology");
    if (engine.offered_bogus(probe)) ++outcome.probes_triggered;
  }
  return outcome;
}

}  // namespace bgpsim
