#include "detect/detector.hpp"

#include "obs/obs.hpp"
#include "support/assert.hpp"

namespace bgpsim {

namespace {

void record_outcome(const DetectionOutcome& outcome) {
  BGPSIM_COUNTER_ADD("detect.evaluations", 1);
  if (!outcome.detected()) BGPSIM_COUNTER_ADD("detect.missed", 1);
}

}  // namespace

DetectionOutcome evaluate_detection(const RouteTable& routes,
                                    const ProbeSet& probes) {
  DetectionOutcome outcome;
  for (const AsId probe : probes.probes()) {
    BGPSIM_REQUIRE(probe < routes.routes.size(), "probe outside route table");
    if (routes.routes[probe].origin == Origin::Attacker) {
      ++outcome.probes_triggered;
    }
  }
  record_outcome(outcome);
  return outcome;
}

DetectionOutcome evaluate_detection_heard(const GenerationEngine& engine,
                                          const ProbeSet& probes) {
  DetectionOutcome outcome;
  for (const AsId probe : probes.probes()) {
    BGPSIM_REQUIRE(probe < engine.graph().num_ases(), "probe outside topology");
    if (engine.offered_bogus(probe)) ++outcome.probes_triggered;
  }
  record_outcome(outcome);
  return outcome;
}

std::uint32_t first_detection_generation(const PropagationTrace& trace,
                                         const ProbeSet& probes) {
  for (const GenerationFrame& frame : trace.frames) {
    for (const TraceEdge& edge : frame.edges) {
      if (edge.new_origin == Origin::Attacker && probes.contains(edge.to)) {
        BGPSIM_HISTOGRAM_OBSERVE("detect.first_detection_generation",
                                 ::bgpsim::obs::HistogramSpec::linear(0, 32, 32),
                                 frame.generation);
        BGPSIM_EVENT(::bgpsim::obs::EventRecord ev("first_detection");
                     ev.u64("generation", frame.generation);
                     ev.u64("probe", edge.to);
                     ev.emit());
        return frame.generation;
      }
    }
  }
  return 0;
}

}  // namespace bgpsim
