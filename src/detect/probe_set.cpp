#include "detect/probe_set.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace bgpsim {

ProbeSet::ProbeSet(std::string label, std::vector<AsId> probes)
    : label_(std::move(label)), probes_(std::move(probes)) {
  std::sort(probes_.begin(), probes_.end());
  probes_.erase(std::unique(probes_.begin(), probes_.end()), probes_.end());
  BGPSIM_REQUIRE(!probes_.empty(), "a probe set needs at least one probe");
}

ProbeSet ProbeSet::tier1(const TierClassification& tiers) {
  return ProbeSet(std::to_string(tiers.tier1.size()) + " tier-1 probes",
                  tiers.tier1);
}

ProbeSet ProbeSet::degree_core(const AsGraph& graph, std::uint32_t min_degree) {
  auto members = ases_with_degree_at_least(graph, min_degree);
  std::string label = std::to_string(members.size()) + " probes with degree >= " +
                      std::to_string(min_degree);
  return ProbeSet(std::move(label), std::move(members));
}

ProbeSet ProbeSet::top_k(const AsGraph& graph, std::size_t k) {
  auto members = top_k_by_degree(graph, k);
  std::string label = "top " + std::to_string(members.size()) + " degree probes";
  return ProbeSet(std::move(label), std::move(members));
}

ProbeSet ProbeSet::bgpmon_style(const AsGraph& graph, std::size_t count, Rng& rng) {
  BGPSIM_REQUIRE(count >= 4, "bgpmon_style needs at least 4 probes");
  const std::size_t high = std::max<std::size_t>(1, count / 4);
  std::vector<AsId> probes = top_k_by_degree(graph, high * 3);
  probes = rng.sample_without_replacement(probes, high);

  // Remaining probes: uniform over all ASes (universities, regional ISPs...).
  std::vector<AsId> everyone(graph.num_ases());
  for (AsId v = 0; v < graph.num_ases(); ++v) everyone[v] = v;
  std::vector<AsId> rest = rng.sample_without_replacement(everyone, count * 2);
  for (const AsId v : rest) {
    if (probes.size() >= count) break;
    if (std::find(probes.begin(), probes.end(), v) == probes.end()) {
      probes.push_back(v);
    }
  }
  std::string label = std::to_string(probes.size()) + " BGPmon-style probes";
  return ProbeSet(std::move(label), std::move(probes));
}

bool ProbeSet::contains(AsId as_id) const {
  return std::binary_search(probes_.begin(), probes_.end(), as_id);
}

}  // namespace bgpsim
