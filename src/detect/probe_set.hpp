// Detector vantage points (§VI): the set of ASes a hijack-detection service
// peers with. An attack is *seen* by a probe when the probe AS selects (and
// would propagate) the bogus route — the paper's definition.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "support/rng.hpp"
#include "topology/metrics.hpp"

namespace bgpsim {

class ProbeSet {
 public:
  ProbeSet(std::string label, std::vector<AsId> probes);

  /// Case 1: all tier-1 ASes as probes.
  static ProbeSet tier1(const TierClassification& tiers);

  /// Case 3: every AS with degree >= min_degree.
  static ProbeSet degree_core(const AsGraph& graph, std::uint32_t min_degree);

  /// Scale-invariant analogue of a degree core: top-k by degree.
  static ProbeSet top_k(const AsGraph& graph, std::size_t k);

  /// Case 2: a BGPmon-style mix — the real service peers with a couple of
  /// backbones plus many university/regional networks, so this draws ~25%
  /// high-degree transits and ~75% random transit/stub ASes.
  static ProbeSet bgpmon_style(const AsGraph& graph, std::size_t count, Rng& rng);

  const std::string& label() const { return label_; }
  std::span<const AsId> probes() const { return probes_; }
  std::size_t size() const { return probes_.size(); }
  bool contains(AsId as_id) const;

 private:
  std::string label_;
  std::vector<AsId> probes_;  // sorted ascending, unique
};

}  // namespace bgpsim
