// Detection evaluation: given the converged routing state of a hijack, how
// many vantage points saw the bogus route?
#pragma once

#include <cstdint>

#include "bgp/generation_engine.hpp"
#include "bgp/types.hpp"
#include "detect/probe_set.hpp"

namespace bgpsim {

struct DetectionOutcome {
  std::uint32_t probes_triggered = 0;
  bool detected() const { return probes_triggered > 0; }
};

/// A probe is triggered when its AS selected the attacker's route — the
/// paper's "seen (i.e. received and propagated onwards)" semantics: a BGP
/// monitor peered with a router observes that router's best paths.
DetectionOutcome evaluate_detection(const RouteTable& routes, const ProbeSet& probes);

/// Alternative "received" semantics: a probe is triggered when the bogus
/// announcement was merely *delivered* to its AS, even if rejected. An upper
/// bound on detector power (a monitor session would see the update before
/// the router's policy discards it). Generation engine only.
DetectionOutcome evaluate_detection_heard(const GenerationEngine& engine,
                                          const ProbeSet& probes);

/// Replay a propagation trace and return the generation in which some probe
/// first *selected* the attacker's route (TraceEdge::new_origin), i.e. the
/// earliest clock tick the detection service could have raised an alarm.
/// Returns 0 when no probe ever adopted the bogus route.
std::uint32_t first_detection_generation(const PropagationTrace& trace,
                                         const ProbeSet& probes);

}  // namespace bgpsim
