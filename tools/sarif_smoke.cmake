# SARIF contract smoke check for bgpsim-lint (run via ctest, see
# tools/CMakeLists.txt). Runs the linter over a fixture that is known to
# violate several rules, asks for a --sarif report, and validates the
# minimal SARIF 2.1.0 shape GitHub code scanning requires:
#   version, runs[0].tool.driver.{name,rules}, and for every result:
#   ruleId, message.text, locations[0].physicalLocation with
#   artifactLocation.uri and region.startLine.
# Uses cmake's string(JSON) so the check needs no interpreter beyond cmake.
#
# Expected -D inputs: BGPSIM_LINT (linter binary), REPO_ROOT, WORK_DIR.
cmake_minimum_required(VERSION 3.20)  # string(JSON), IN_LIST in script mode
if(NOT BGPSIM_LINT OR NOT REPO_ROOT OR NOT WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DBGPSIM_LINT=... -DREPO_ROOT=... -DWORK_DIR=... -P sarif_smoke.cmake")
endif()

set(sarif_file "${WORK_DIR}/lint_smoke.sarif")
set(json_file "${WORK_DIR}/lint_smoke.json")
file(REMOVE "${sarif_file}" "${json_file}")

execute_process(
  COMMAND "${BGPSIM_LINT}" --root "${REPO_ROOT}"
          --sarif "${sarif_file}" --json "${json_file}"
          "${REPO_ROOT}/tests/lint_fixtures/seq_cst_violation.cpp"
          "${REPO_ROOT}/tests/lint_fixtures/raw_lock_violation.cpp"
  RESULT_VARIABLE lint_rc
  OUTPUT_VARIABLE lint_out)
# Findings are the point of the fixture: the run must exit 1 (not 0: rules
# silently off; not 2: the linter itself broke).
if(NOT lint_rc EQUAL 1)
  message(FATAL_ERROR "expected exit 1 on violation fixtures, got ${lint_rc}\n${lint_out}")
endif()

file(READ "${sarif_file}" sarif)

string(JSON version GET "${sarif}" "version")
if(NOT version STREQUAL "2.1.0")
  message(FATAL_ERROR "sarif version '${version}' != 2.1.0")
endif()

string(JSON driver_name GET "${sarif}" "runs" 0 "tool" "driver" "name")
if(NOT driver_name STREQUAL "bgpsim-lint")
  message(FATAL_ERROR "unexpected tool.driver.name '${driver_name}'")
endif()

# The driver must advertise the full rule catalog (>= 6 rules, per the
# concurrency-pass acceptance bar) with non-empty descriptions.
string(JSON rule_count LENGTH "${sarif}" "runs" 0 "tool" "driver" "rules")
if(rule_count LESS 6)
  message(FATAL_ERROR "only ${rule_count} rules in driver.rules, expected >= 6")
endif()
math(EXPR last_rule "${rule_count} - 1")
foreach(i RANGE ${last_rule})
  string(JSON rule_id GET "${sarif}" "runs" 0 "tool" "driver" "rules" ${i} "id")
  string(JSON rule_desc GET "${sarif}" "runs" 0 "tool" "driver" "rules" ${i}
         "shortDescription" "text")
  if(rule_id STREQUAL "" OR rule_desc STREQUAL "")
    message(FATAL_ERROR "rule ${i} has empty id or description")
  endif()
endforeach()

string(JSON result_count LENGTH "${sarif}" "runs" 0 "results")
if(result_count LESS 2)
  message(FATAL_ERROR "only ${result_count} results, expected the fixture violations")
endif()
math(EXPR last_result "${result_count} - 1")
set(seen_rules "")
foreach(i RANGE ${last_result})
  string(JSON rule_id GET "${sarif}" "runs" 0 "results" ${i} "ruleId")
  string(JSON msg GET "${sarif}" "runs" 0 "results" ${i} "message" "text")
  string(JSON uri GET "${sarif}" "runs" 0 "results" ${i}
         "locations" 0 "physicalLocation" "artifactLocation" "uri")
  string(JSON start_line GET "${sarif}" "runs" 0 "results" ${i}
         "locations" 0 "physicalLocation" "region" "startLine")
  if(rule_id STREQUAL "" OR msg STREQUAL "" OR uri STREQUAL "")
    message(FATAL_ERROR "result ${i} missing ruleId/message/uri")
  endif()
  if(start_line LESS 1)
    message(FATAL_ERROR "result ${i} has startLine ${start_line} < 1")
  endif()
  list(APPEND seen_rules "${rule_id}")
endforeach()
if(NOT "seq-cst-atomic" IN_LIST seen_rules OR NOT "raw-lock" IN_LIST seen_rules)
  message(FATAL_ERROR "expected seq-cst-atomic and raw-lock results, saw: ${seen_rules}")
endif()

# The --json sidecar must parse too and agree on the finding count.
file(READ "${json_file}" lint_json)
string(JSON json_findings LENGTH "${lint_json}" "findings")
if(NOT json_findings EQUAL result_count)
  message(FATAL_ERROR "--json findings (${json_findings}) != sarif results (${result_count})")
endif()

message(STATUS "sarif smoke: ${rule_count} rules, ${result_count} results, shape ok")
