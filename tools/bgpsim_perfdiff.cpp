// bgpsim-perfdiff — compare BENCH_*.json run reports across builds.
//
//   bgpsim-perfdiff --baseline bench_baselines/ --candidate out/
//   bgpsim-perfdiff --baseline old/BENCH_fig1.json --candidate new/BENCH_fig1.json
//   bgpsim-perfdiff --candidate out/ --update-baselines bench_baselines/
//
// Exit codes:
//   0  no regression (or baselines updated)
//   1  perf or fidelity regression detected (named in the output)
//   2  usage error, unreadable/malformed report, or incomparable topologies
#include <cstdio>
#include <string>
#include <vector>

#include "obs/perfdiff.hpp"
#include "support/error.hpp"

namespace {

using bgpsim::obs::BenchSample;
using bgpsim::obs::DiffOptions;
using bgpsim::obs::PerfDiffResult;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --baseline <report|dir> --candidate <report|dir>\n"
               "          [--threshold <frac>] [--mem-threshold <frac>]\n"
               "          [--alpha <p>] [--min-seconds <s>]\n"
               "       %s --candidate <report|dir> --update-baselines <dir>\n"
               "\n"
               "Pairs BENCH_*.json reports by (name, scale, seed) and reports\n"
               "per-metric deltas. Time metrics regress past --threshold\n"
               "(default 0.10); memory gauges (gauge.mem.*bytes*) regress past\n"
               "--mem-threshold (default 0.15); counters must match exactly\n"
               "(same seed => deterministic). Exits 1 on regression, 2 on\n"
               "schema/usage/topology-mismatch errors.\n",
               argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string candidate_path;
  std::string update_dir;
  DiffOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--baseline") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      baseline_path = v;
    } else if (arg == "--candidate") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      candidate_path = v;
    } else if (arg == "--update-baselines") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      update_dir = v;
    } else if (arg == "--threshold") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.threshold = std::stod(v);
    } else if (arg == "--mem-threshold") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.mem_threshold = std::stod(v);
    } else if (arg == "--alpha") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.alpha = std::stod(v);
    } else if (arg == "--min-seconds") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.min_seconds = std::stod(v);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (candidate_path.empty()) return usage(argv[0]);
  if (baseline_path.empty() && update_dir.empty()) return usage(argv[0]);

  try {
    const std::vector<BenchSample> candidate =
        bgpsim::obs::load_reports(candidate_path);
    if (candidate.empty()) {
      std::fprintf(stderr, "no BENCH_*.json reports under %s\n",
                   candidate_path.c_str());
      return 2;
    }

    if (!update_dir.empty()) {
      const std::vector<std::string> written =
          bgpsim::obs::update_baselines(candidate, update_dir);
      for (const std::string& file : written) {
        std::printf("baseline updated: %s/%s\n", update_dir.c_str(),
                    file.c_str());
      }
      return 0;
    }

    const std::vector<BenchSample> baseline =
        bgpsim::obs::load_reports(baseline_path);
    if (baseline.empty()) {
      std::fprintf(stderr, "no BENCH_*.json reports under %s\n",
                   baseline_path.c_str());
      return 2;
    }
    for (const BenchSample& sample : baseline) {
      if (sample.topology_checksum == 0) {
        std::fprintf(stderr,
                     "warning: %s has no topology_checksum (old report); "
                     "topology comparability not verified\n",
                     sample.path.c_str());
      }
    }

    const PerfDiffResult result =
        bgpsim::obs::diff_reports(baseline, candidate, options);
    std::fputs(result.render(options).c_str(), stdout);
    if (result.benches.empty()) {
      std::fprintf(stderr, "no (name, scale, seed) pairings matched\n");
      return 2;
    }
    return result.regression ? 1 : 0;
  } catch (const bgpsim::obs::IncomparableError& e) {
    std::fprintf(stderr, "perfdiff: %s\n", e.what());
    return 2;
  } catch (const bgpsim::Error& e) {
    std::fprintf(stderr, "perfdiff: %s\n", e.what());
    return 2;
  }
}
