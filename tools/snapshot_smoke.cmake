# CTest driver for the snapshot CLI lifecycle: save -> info -> load/verify.
# Invoked as: cmake -DBGPSIM_CLI=<path> -DWORK_DIR=<dir> -P snapshot_smoke.cmake
set(snap "${WORK_DIR}/snapshot_smoke.snap")

execute_process(
  COMMAND ${BGPSIM_CLI} snapshot save --ases 800 --seed 7 --out ${snap}
  RESULT_VARIABLE save_status OUTPUT_VARIABLE save_out)
if(NOT save_status EQUAL 0)
  message(FATAL_ERROR "snapshot save failed (${save_status}): ${save_out}")
endif()
if(NOT save_out MATCHES "baseline targets")
  message(FATAL_ERROR "snapshot save output missing summary: ${save_out}")
endif()

execute_process(
  COMMAND ${BGPSIM_CLI} snapshot info --file ${snap}
  RESULT_VARIABLE info_status OUTPUT_VARIABLE info_out)
if(NOT info_status EQUAL 0)
  message(FATAL_ERROR "snapshot info failed (${info_status}): ${info_out}")
endif()
if(NOT info_out MATCHES "format version: 1" OR NOT info_out MATCHES "ases: 800")
  message(FATAL_ERROR "snapshot info output unexpected: ${info_out}")
endif()

execute_process(
  COMMAND ${BGPSIM_CLI} snapshot info --file ${snap} --json
  RESULT_VARIABLE json_status OUTPUT_VARIABLE json_out)
if(NOT json_status EQUAL 0 OR NOT json_out MATCHES "\"baseline_targets\":")
  message(FATAL_ERROR "snapshot info --json unexpected: ${json_out}")
endif()

execute_process(
  COMMAND ${BGPSIM_CLI} snapshot load --file ${snap}
  RESULT_VARIABLE load_status OUTPUT_VARIABLE load_out)
if(NOT load_status EQUAL 0)
  message(FATAL_ERROR "snapshot load failed (${load_status}): ${load_out}")
endif()
if(NOT load_out MATCHES "verified against a cold convergence")
  message(FATAL_ERROR "snapshot load output missing verification: ${load_out}")
endif()

file(REMOVE ${snap})
message(STATUS "snapshot lifecycle ok")
