// bgpsim-profview — terminal viewer for collapsed-stack (folded) CPU
// profiles, the format the in-process sampling profiler (obs/profiler.hpp)
// writes and flamegraph.pl / speedscope consume:
//
//   frame;frame;frame <samples>        (root first, one line per stack)
//
//   bgpsim-profview <profile.folded> [--top N] [--sort self|total]
//       top-N frames: self samples (frame is the leaf) and total samples
//       (frame is anywhere on the stack, counted once per stack)
//   bgpsim-profview --diff <a.folded> <b.folded> [--top N]
//       frame-level A/B comparison sorted by |Δself|, for attributing a
//       perf-gate regression to the frames that moved
//
// Exit status: 0 on success, 1 on unreadable/empty/malformed input, 2 on
// usage errors.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace {

struct Profile {
  std::uint64_t total_samples = 0;
  std::map<std::string, std::uint64_t> self;   // leaf frame -> samples
  std::map<std::string, std::uint64_t> total;  // frame anywhere -> samples
};

/// Split one folded stack ("a;b;c") into frames. Returns false on an empty
/// stack or empty frame (";;" or leading/trailing ';').
bool split_stack(const std::string& stack, std::vector<std::string>& frames) {
  frames.clear();
  std::size_t start = 0;
  while (start <= stack.size()) {
    std::size_t semi = stack.find(';', start);
    if (semi == std::string::npos) semi = stack.size();
    if (semi == start) return false;
    frames.emplace_back(stack.substr(start, semi - start));
    start = semi + 1;
  }
  return !frames.empty();
}

bool load_profile(const std::string& path, Profile& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "profview: cannot read %s\n", path.c_str());
    return false;
  }
  std::string line;
  std::vector<std::string> frames;
  std::vector<std::string> seen;  // frames already counted for this stack
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    // The sample count follows the LAST space: frame names may themselves
    // contain spaces (demangled signatures), never the separator semicolon.
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space + 1 >= line.size()) {
      std::fprintf(stderr, "profview: %s:%zu: no sample count\n", path.c_str(),
                   lineno);
      return false;
    }
    char* end = nullptr;
    const std::string count_token = line.substr(space + 1);
    const unsigned long long count = std::strtoull(count_token.c_str(), &end, 10);
    if (end == count_token.c_str() || *end != '\0' || count == 0) {
      std::fprintf(stderr, "profview: %s:%zu: bad sample count '%s'\n",
                   path.c_str(), lineno, count_token.c_str());
      return false;
    }
    if (!split_stack(line.substr(0, space), frames)) {
      std::fprintf(stderr, "profview: %s:%zu: malformed stack\n", path.c_str(),
                   lineno);
      return false;
    }
    out.total_samples += count;
    out.self[frames.back()] += count;
    seen.clear();
    for (const std::string& frame : frames) {
      // Recursive frames appear multiple times in one stack; total time
      // still counts each stack once per distinct frame.
      if (std::find(seen.begin(), seen.end(), frame) != seen.end()) continue;
      seen.push_back(frame);
      out.total[frame] += count;
    }
  }
  if (out.total_samples == 0) {
    std::fprintf(stderr, "profview: %s: empty profile\n", path.c_str());
    return false;
  }
  return true;
}

std::string truncate_frame(const std::string& frame, std::size_t width) {
  if (frame.size() <= width) return frame;
  return frame.substr(0, width - 3) + "...";
}

double pct(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0
                    : 100.0 * static_cast<double>(part) /
                          static_cast<double>(whole);
}

int cmd_top(const std::string& path, std::size_t top_n, bool sort_by_total) {
  Profile prof;
  if (!load_profile(path, prof)) return 1;

  struct Row {
    const std::string* frame;
    std::uint64_t self;
    std::uint64_t total;
  };
  std::vector<Row> rows;
  rows.reserve(prof.total.size());
  for (const auto& [frame, total] : prof.total) {
    const auto self_it = prof.self.find(frame);
    rows.push_back(
        {&frame, self_it == prof.self.end() ? 0 : self_it->second, total});
  }
  std::stable_sort(rows.begin(), rows.end(), [&](const Row& a, const Row& b) {
    return sort_by_total ? a.total > b.total : a.self > b.self;
  });

  std::printf("%s: %llu samples, %zu unique frames (sorted by %s)\n",
              path.c_str(),
              static_cast<unsigned long long>(prof.total_samples),
              prof.total.size(), sort_by_total ? "total" : "self");
  std::printf("%10s %7s %10s %7s  %s\n", "self", "self%", "total", "total%",
              "frame");
  const std::size_t n = std::min(top_n, rows.size());
  for (std::size_t i = 0; i < n; ++i) {
    const Row& row = rows[i];
    std::printf("%10llu %6.2f%% %10llu %6.2f%%  %s\n",
                static_cast<unsigned long long>(row.self),
                pct(row.self, prof.total_samples),
                static_cast<unsigned long long>(row.total),
                pct(row.total, prof.total_samples),
                truncate_frame(*row.frame, 100).c_str());
  }
  return 0;
}

int cmd_diff(const std::string& path_a, const std::string& path_b,
             std::size_t top_n) {
  Profile a;
  Profile b;
  if (!load_profile(path_a, a) || !load_profile(path_b, b)) return 1;

  // Compare in percent of each run's own samples, so two reps of different
  // lengths (or rates) still diff meaningfully.
  struct Row {
    const std::string* frame;
    double self_a;
    double self_b;
    double total_a;
    double total_b;
  };
  std::map<std::string, Row> by_frame;
  const auto fold = [&](const Profile& p, bool is_a) {
    for (const auto& [frame, total] : p.total) {
      Row& row = by_frame
                     .try_emplace(frame, Row{nullptr, 0.0, 0.0, 0.0, 0.0})
                     .first->second;
      const auto self_it = p.self.find(frame);
      const double self_pct =
          pct(self_it == p.self.end() ? 0 : self_it->second, p.total_samples);
      const double total_pct = pct(total, p.total_samples);
      (is_a ? row.self_a : row.self_b) = self_pct;
      (is_a ? row.total_a : row.total_b) = total_pct;
    }
  };
  fold(a, true);
  fold(b, false);

  std::vector<std::pair<const std::string*, const Row*>> rows;
  rows.reserve(by_frame.size());
  for (const auto& [frame, row] : by_frame) rows.emplace_back(&frame, &row);
  std::stable_sort(rows.begin(), rows.end(), [](const auto& x, const auto& y) {
    return std::fabs(x.second->self_b - x.second->self_a) >
           std::fabs(y.second->self_b - y.second->self_a);
  });

  std::printf("diff: A=%s (%llu samples)  B=%s (%llu samples)\n",
              path_a.c_str(), static_cast<unsigned long long>(a.total_samples),
              path_b.c_str(), static_cast<unsigned long long>(b.total_samples));
  std::printf("%8s %8s %8s  %8s %8s %8s  %s\n", "selfA%", "selfB%", "Δself",
              "totA%", "totB%", "Δtot", "frame");
  const std::size_t n = std::min(top_n, rows.size());
  for (std::size_t i = 0; i < n; ++i) {
    const Row& row = *rows[i].second;
    std::printf("%7.2f%% %7.2f%% %+7.2f%%  %7.2f%% %7.2f%% %+7.2f%%  %s\n",
                row.self_a, row.self_b, row.self_b - row.self_a, row.total_a,
                row.total_b, row.total_b - row.total_a,
                truncate_frame(*rows[i].first, 80).c_str());
  }
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: bgpsim-profview <profile.folded> [--top N] "
               "[--sort self|total]\n"
               "       bgpsim-profview --diff <a.folded> <b.folded> [--top N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  bool diff = false;
  bool sort_by_total = false;
  std::size_t top_n = 20;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--diff") {
      diff = true;
    } else if (arg == "--top") {
      if (i + 1 >= argc) return usage();
      top_n = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      if (top_n == 0) return usage();
    } else if (arg == "--sort") {
      if (i + 1 >= argc) return usage();
      const std::string key = argv[++i];
      if (key != "self" && key != "total") return usage();
      sort_by_total = key == "total";
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      positional.push_back(arg);
    }
  }
  if (diff) {
    if (positional.size() != 2) return usage();
    return cmd_diff(positional[0], positional[1], top_n);
  }
  if (positional.size() != 1) return usage();
  return cmd_top(positional[0], top_n, sort_by_total);
}
