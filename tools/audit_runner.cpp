// audit_runner — differential engine-audit harness.
//
// Generates a synthetic Internet, then runs the two independently implemented
// routing engines (GenerationEngine: message-passing reconstruction of the
// paper's simulator; EquilibriumEngine: O(V+E) fixed-point) side by side over
// a batch of hijack scenarios and checks:
//   * audit_route_table() is clean on every equilibrium table (loop-free,
//     valley-free, consistent via chains and lengths),
//   * every GenerationEngine stored path is loop-free and valley-free,
//   * origin_agreement == 1.0 — the engines pick the same origin everywhere
//     (the paper's pollution metrics depend only on this choice).
//
// This is the runtime counterpart of the paper's RouteViews validation (62 %
// exact/equivalent matches): two engines written from different designs
// agreeing on every scenario is strong evidence neither mis-implements the
// Gao–Rexford policy model. Registered as CTest cases (also under the asan /
// ubsan presets); any disagreement prints the scenario coordinates so it can
// be replayed with --seed/--victim/--attacker.
//
// Exit status: 0 all scenarios pass, 1 any check failed, 2 usage error.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bgp/equilibrium_engine.hpp"
#include "bgp/generation_engine.hpp"
#include "bgp/route_audit.hpp"
#include "support/rng.hpp"
#include "topology/internet_gen.hpp"
#include "topology/metrics.hpp"

namespace {

struct Options {
  std::uint32_t ases = 1000;
  std::uint64_t seed = 1;
  std::uint32_t trials = 8;
  // Replay a single scenario instead of sampling `trials` random ones.
  std::int64_t victim = -1;
  std::int64_t attacker = -1;
  bool tier1_shortest = true;
  bool explain = false;  ///< dump per-AS detail for every disagreement
};

int usage() {
  std::cerr << "usage: audit_runner [--ases N] [--seed S] [--trials T]\n"
               "                    [--victim ID --attacker ID] [--explain]\n"
               "                    [--no-tier1-shortest]\n";
  return 2;
}

const char* rel_name(const bgpsim::AsGraph& graph, bgpsim::AsId a, bgpsim::AsId b) {
  const auto rel = graph.relationship(a, b);
  if (!rel) return "none";
  switch (*rel) {
    case bgpsim::Rel::Provider:
      return "provider";
    case bgpsim::Rel::Peer:
      return "peer";
    case bgpsim::Rel::Customer:
      return "customer";
    case bgpsim::Rel::Sibling:
      return "sibling";
  }
  return "?";
}

void explain_route(const bgpsim::AsGraph& graph, const char* label,
                   const bgpsim::Route& route, bgpsim::AsId v) {
  std::cout << "    " << label << ": origin=" << to_string(route.origin)
            << " cls=" << static_cast<int>(route.cls)
            << " len=" << route.path_len;
  if (route.via != bgpsim::kInvalidAs) {
    std::cout << " via=" << route.via << " (" << rel_name(graph, v, route.via)
              << " of AS " << v << ")";
  }
  std::cout << '\n';
}

void explain_disagreements(const bgpsim::AsGraph& graph,
                           const bgpsim::RouteTable& eq_table,
                           const bgpsim::RouteTable& gen_table,
                           const bgpsim::GenerationEngine& generation,
                           const bgpsim::PolicyConfig& config) {
  using namespace bgpsim;
  std::uint32_t shown = 0;
  for (AsId v = 0; v < graph.num_ases(); ++v) {
    if (eq_table.routes[v].origin == gen_table.routes[v].origin) continue;
    if (++shown > 16) {
      std::cout << "  ... (more disagreements elided)\n";
      break;
    }
    std::cout << "  AS " << v << " disagrees (tier1=" << config.as_is_tier1(v)
              << "):\n";
    explain_route(graph, "equilibrium", eq_table.routes[v], v);
    explain_route(graph, "generation ", gen_table.routes[v], v);
    std::cout << "    generation path:";
    for (const AsId hop : generation.path_of(v)) std::cout << ' ' << hop;
    std::cout << '\n';
  }
}

struct Failure {
  std::uint32_t count = 0;

  void report(const Options& opts, bgpsim::AsId victim, bgpsim::AsId attacker,
              const std::string& what) {
    ++count;
    std::cout << "FAIL: " << what << "  [replay: --ases " << opts.ases
              << " --seed " << opts.seed << " --victim " << victim
              << " --attacker " << attacker << "]\n";
  }
};

void audit_scenario(const Options& opts, const bgpsim::AsGraph& graph,
                    const bgpsim::PolicyConfig& config,
                    bgpsim::EquilibriumEngine& equilibrium,
                    bgpsim::GenerationEngine& generation, bgpsim::AsId victim,
                    bgpsim::AsId attacker, Failure& failure) {
  using namespace bgpsim;

  RouteTable eq_table;
  equilibrium.compute_hijack(victim, attacker, nullptr, eq_table);
  const AuditReport eq_report = audit_route_table(graph, eq_table);
  if (!eq_report.clean()) {
    failure.report(opts, victim, attacker,
                   "equilibrium table not clean: loops=" +
                       std::to_string(eq_report.loops) + " valleys=" +
                       std::to_string(eq_report.valley_violations) +
                       " broken=" + std::to_string(eq_report.broken_via_chains) +
                       " len=" + std::to_string(eq_report.length_mismatches));
  }

  generation.reset();
  const auto legit_stats = generation.announce(victim, Origin::Legit);
  const auto attack_stats = generation.announce(attacker, Origin::Attacker);
  if (!legit_stats.converged || !attack_stats.converged) {
    failure.report(opts, victim, attacker, "generation engine did not converge");
    return;
  }

  std::uint64_t bad_paths = 0;
  for (AsId v = 0; v < graph.num_ases(); ++v) {
    const auto& path = generation.path_of(v);
    if (path.empty()) continue;
    if (!path_is_loop_free(path) || !path_is_valley_free(graph, path)) ++bad_paths;
  }
  if (bad_paths != 0) {
    failure.report(opts, victim, attacker,
                   "generation engine produced " + std::to_string(bad_paths) +
                       " non-policy-compliant path(s)");
  }

  RouteTable gen_table;
  generation.export_routes(gen_table);
  const double agreement = origin_agreement(eq_table, gen_table);
  if (agreement != 1.0) {
    failure.report(opts, victim, attacker,
                   "origin agreement " + std::to_string(agreement) +
                       " != 1.0 between engines");
    if (opts.explain) {
      explain_disagreements(graph, eq_table, gen_table, generation, config);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bgpsim;

  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--ases" && has_value) {
      opts.ases = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--seed" && has_value) {
      opts.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--trials" && has_value) {
      opts.trials = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--victim" && has_value) {
      opts.victim = std::strtol(argv[++i], nullptr, 10);
    } else if (arg == "--attacker" && has_value) {
      opts.attacker = std::strtol(argv[++i], nullptr, 10);
    } else if (arg == "--no-tier1-shortest") {
      opts.tier1_shortest = false;
    } else if (arg == "--explain") {
      opts.explain = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      return usage();
    }
  }
  if ((opts.victim < 0) != (opts.attacker < 0)) return usage();

  InternetGenParams params;
  params.total_ases = opts.ases;
  params.seed = opts.seed;
  const AsGraph graph = generate_internet(params);

  PolicyConfig config;
  config.tier1_shortest_path = opts.tier1_shortest;
  const auto tiers =
      classify_tiers(graph, scale_degree_threshold(opts.ases, 120));
  config.is_tier1 =
      std::vector<std::uint8_t>(tiers.is_tier1.begin(), tiers.is_tier1.end());

  EquilibriumEngine equilibrium(graph, config);
  GenerationEngine generation(graph, config);

  Failure failure;
  std::uint32_t scenarios = 0;
  if (opts.victim >= 0) {
    audit_scenario(opts, graph, config, equilibrium, generation,
                   static_cast<AsId>(opts.victim),
                   static_cast<AsId>(opts.attacker), failure);
    ++scenarios;
  } else {
    Rng rng(derive_seed(opts.seed, 0xa0d17ULL));
    for (std::uint32_t t = 0; t < opts.trials; ++t) {
      const AsId victim = static_cast<AsId>(rng.bounded(graph.num_ases()));
      AsId attacker = static_cast<AsId>(rng.bounded(graph.num_ases()));
      if (attacker == victim) attacker = (attacker + 1) % graph.num_ases();
      audit_scenario(opts, graph, config, equilibrium, generation, victim,
                     attacker, failure);
      ++scenarios;
    }
  }

  std::cout << "audit_runner: " << graph.num_ases() << " ASes, " << scenarios
            << " scenario(s), " << failure.count << " failure(s)\n";
  return failure.count == 0 ? 0 : 1;
}
