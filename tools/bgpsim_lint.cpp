// bgpsim-lint v2 — domain-specific linter for rules no generic tool knows.
//
// Architecture: a real tokenizer (strings, character literals, and comments
// can never trigger a rule) feeds multiple passes —
//
//   pass 0  tokenize; collect `// bgpsim-lint: allow(<rule>[, <rule>...])`
//           suppression comments (a suppression covers its own line and the
//           line below, so it can sit above or beside the finding)
//   pass 1  line rules over comment/string-stripped lines (the PR-1 rule
//           set: pragma-once, raw-assert, rng-policy, library-io,
//           timing-policy, thread-policy, obs-io, serve-logging)
//   pass 2  token rules (the concurrency set: raw-lock, mutex-annotation,
//           seq-cst-atomic, detached-thread)
//   pass 3  optional header self-containment (--check-headers; invokes the
//           compiler per header)
//
// Rules (see DESIGN.md "Correctness tooling" and "Concurrency model"):
//   pragma-once      every header carries #pragma once
//   raw-assert       no assert()/abort()/<cassert> outside support/assert.hpp
//   rng-policy       no std:: engines / rand() outside support/rng.*
//   library-io       no stdout/stderr writes in src/ library code
//   timing-policy    no raw std::chrono in src/ outside src/obs/
//   thread-policy    no std::thread in src/ outside the thread homes
//   obs-io           no direct ofstream JSON emission outside obs/store
//   serve-logging    no stdout/stderr writes from src/serve/ request
//                    handlers — request reporting goes through the access
//                    log and metrics registry, never a worker's stdio
//   raw-lock         no direct .lock()/.unlock()/.try_lock() member calls in
//                    src/ — locks are held through the annotated RAII guard
//                    (bgpsim::MutexLock, support/thread_annotations.hpp), the
//                    only pattern Clang's -Wthread-safety can reason about
//   mutex-annotation a std::mutex / std::condition_variable member in a
//                    header must sit next to a BGPSIM_CAPABILITY /
//                    BGPSIM_GUARDED_BY annotation — in practice: use
//                    bgpsim::Mutex, which is capability-annotated, so the
//                    static analysis sees every lock in the tree
//   seq-cst-atomic   every std::atomic load/store/fetch_*/exchange/
//                    compare_exchange in src/ spells out its memory_order;
//                    a bare call silently pays for seq_cst the author almost
//                    never meant, and hides which orderings the algorithm
//                    actually relies on
//   detached-thread  .detach() is banned everywhere: a detached thread
//                    outlives every join point, dodges the tsan lane's exit
//                    barrier, and races static destruction
//   self-contained   every public header under src/ compiles standalone
//
// Files under tests/lint_fixtures/ are linted as library code: they are
// deliberate violations that pin each rule's behavior in CI (WILL_FAIL).
//
// Output: file:line: rule: message lines on stdout (editors and CI annotate
// them), plus optional machine-readable reports via --json PATH and
// --sarif PATH (SARIF 2.1.0, consumed by GitHub code scanning).
//
// Exit status: 0 clean, 1 non-suppressed findings, 2 usage or I/O error.
#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  const char* id;
  const char* description;
};

constexpr RuleInfo kRules[] = {
    {"pragma-once", "every header carries #pragma once"},
    {"raw-assert",
     "invariants throw via BGPSIM_ASSERT (support/assert.hpp), never "
     "assert()/abort()"},
    {"rng-policy",
     "all randomness flows through the deterministic, explicitly seeded "
     "bgpsim::Rng"},
    {"library-io",
     "library code reports through return values and exceptions, not stdio"},
    {"timing-policy",
     "all timing flows through bgpsim::obs so it compiles out under "
     "-DBGPSIM_OBS=OFF"},
    {"thread-policy",
     "threads are constructed only in the sanctioned homes (parallel_chunks, "
     "obs heartbeat, net, serve)"},
    {"obs-io",
     "JSON-emitting library code routes file output through the obs layer"},
    {"serve-logging",
     "serve handlers never write to stdout/stderr; request reporting goes "
     "through the access log and metrics registry"},
    {"raw-lock",
     "locks are held through the annotated RAII guard (bgpsim::MutexLock), "
     "never via direct .lock()/.unlock() calls"},
    {"mutex-annotation",
     "mutex/condvar members in headers carry Clang thread-safety "
     "annotations (use bgpsim::Mutex + BGPSIM_GUARDED_BY)"},
    {"seq-cst-atomic",
     "atomic operations spell out their memory_order instead of defaulting "
     "to seq_cst"},
    {"detached-thread",
     "std::thread::detach is banned: detached threads dodge every join "
     "point and race static destruction"},
    {"signal-safety",
     "signal/timer/unwind APIs (signal, sigaction, setitimer, backtrace, "
     "...) live only in src/obs/profiler*; ad-hoc handlers dodge the "
     "async-signal-safety contract"},
    {"provenance-home",
     "provenance edges are emitted only by the engines (src/bgp/) and the "
     "obs layer itself; record_edge calls elsewhere would fork the "
     "infection-tree ground truth"},
    {"campaign-home",
     "the campaign estimator/sampler types (MomentAccumulator, P2Quantile, "
     "QuantileReservoir, CampaignSampler, StratumEstimator) live only in "
     "src/campaign/; other code consumes campaigns through the driver API so "
     "there is exactly one implementation of the statistics to audit"},
    {"self-contained", "every public header under src/ compiles standalone"},
    {"io", "linted file could not be read"},
};

struct Options {
  fs::path root;
  std::vector<fs::path> explicit_paths;
  bool check_headers = false;
  std::string cxx = "c++";
  std::string json_path;
  std::string sarif_path;
};

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind { Ident, Number, String, CharLit, Punct };
  Kind kind;
  std::string text;  // for Punct: the operator spelling ("::", "->", ".", ...)
  std::size_t line;  // 1-based
};

/// Suppressions harvested from comments: line number -> set of rule ids
/// allowed on that line and the one below it.
using SuppressionMap = std::map<std::size_t, std::set<std::string>>;

struct LexedFile {
  std::vector<Token> tokens;
  SuppressionMap suppressions;
  std::vector<std::string> stripped_lines;  // comments/strings blanked
};

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Record `bgpsim-lint: allow(a, b)` rule lists found inside comment text.
void harvest_suppressions(const std::string& comment, std::size_t line,
                          SuppressionMap& out) {
  static const std::string kMarker = "bgpsim-lint:";
  std::size_t pos = comment.find(kMarker);
  while (pos != std::string::npos) {
    std::size_t cursor = pos + kMarker.size();
    while (cursor < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[cursor]))) {
      ++cursor;
    }
    if (comment.compare(cursor, 6, "allow(") == 0) {
      cursor += 6;
      const std::size_t close = comment.find(')', cursor);
      if (close != std::string::npos) {
        std::string rule;
        for (std::size_t i = cursor; i <= close; ++i) {
          const char c = i < close ? comment[i] : ',';
          if (c == ',' ) {
            while (!rule.empty() && rule.back() == ' ') rule.pop_back();
            if (!rule.empty()) out[line].insert(rule);
            rule.clear();
          } else if (c != ' ' || !rule.empty()) {
            rule.push_back(c);
          }
        }
      }
    }
    pos = comment.find(kMarker, pos + kMarker.size());
  }
}

/// One pass over the raw text: emits tokens, collects suppression comments,
/// and produces comment/string-stripped lines for the line-based rules.
LexedFile lex(const std::string& text) {
  LexedFile out;
  std::string stripped;
  stripped.reserve(text.size());
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();

  auto emit_punct = [&](std::string op) {
    out.tokens.push_back({Token::Kind::Punct, std::move(op), line});
  };

  while (i < n) {
    const char c = text[i];
    const char next = i + 1 < n ? text[i + 1] : '\0';

    if (c == '\n') {
      stripped.push_back('\n');
      ++line;
      ++i;
      continue;
    }
    if (c == '/' && next == '/') {
      const std::size_t start = i;
      while (i < n && text[i] != '\n') ++i;
      harvest_suppressions(text.substr(start, i - start), line,
                           out.suppressions);
      continue;
    }
    if (c == '/' && next == '*') {
      const std::size_t start = i;
      const std::size_t start_line = line;
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') {
          stripped.push_back('\n');
          ++line;
        }
        ++i;
      }
      i = i + 1 < n ? i + 2 : n;
      harvest_suppressions(text.substr(start, i - start), start_line,
                           out.suppressions);
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::string literal;
      stripped.push_back(quote);
      ++i;
      while (i < n && text[i] != quote) {
        if (text[i] == '\\' && i + 1 < n) {
          literal.push_back(text[i]);
          literal.push_back(text[i + 1]);
          i += 2;
          continue;
        }
        if (text[i] == '\n') {  // unterminated; keep lines aligned
          stripped.push_back('\n');
          ++line;
          ++i;
          break;
        }
        literal.push_back(text[i]);
        ++i;
      }
      if (i < n && text[i] == quote) {
        stripped.push_back(quote);
        ++i;
      }
      out.tokens.push_back({quote == '"' ? Token::Kind::String
                                         : Token::Kind::CharLit,
                            std::move(literal), line});
      continue;
    }
    if (is_ident_start(c)) {
      std::string ident;
      while (i < n && is_ident_char(text[i])) {
        ident.push_back(text[i]);
        ++i;
      }
      stripped.append(ident);
      out.tokens.push_back({Token::Kind::Ident, std::move(ident), line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string number;
      while (i < n && (is_ident_char(text[i]) || text[i] == '.' ||
                       ((text[i] == '+' || text[i] == '-') && i > 0 &&
                        (text[i - 1] == 'e' || text[i - 1] == 'E')))) {
        number.push_back(text[i]);
        ++i;
      }
      stripped.append(number);
      out.tokens.push_back({Token::Kind::Number, std::move(number), line});
      continue;
    }
    // Punctuation; ::, ->, and . are the shapes the token rules care about.
    stripped.push_back(c);
    if (c == ':' && next == ':') {
      stripped.push_back(next);
      emit_punct("::");
      i += 2;
    } else if (c == '-' && next == '>') {
      stripped.push_back(next);
      emit_punct("->");
      i += 2;
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      emit_punct(std::string(1, c));
      ++i;
    } else {
      ++i;
    }
  }

  // Split the stripped text into lines (kept 1-aligned with the source).
  std::string current;
  for (const char ch : stripped) {
    if (ch == '\n') {
      out.stripped_lines.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(ch);
    }
  }
  out.stripped_lines.push_back(std::move(current));
  return out;
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

bool has_extension(const fs::path& p, std::initializer_list<const char*> exts) {
  const std::string ext = p.extension().string();
  for (const char* e : exts) {
    if (ext == e) return true;
  }
  return false;
}

std::string generic_rel(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(p, root, ec);
  if (ec || rel.empty()) return p.generic_string();
  return rel.generic_string();
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// True when `token` occurs in `line` as a whole identifier (not a suffix of
/// a longer name like static_assert or BGPSIM_ASSERT).
bool has_identifier(const std::string& line, const std::string& token) {
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool left_ok =
        pos == 0 || (!std::isalnum(static_cast<unsigned char>(line[pos - 1])) &&
                     line[pos - 1] != '_');
    const std::size_t end = pos + token.size();
    const bool right_ok =
        end >= line.size() ||
        (!std::isalnum(static_cast<unsigned char>(line[end])) && line[end] != '_');
    if (left_ok && right_ok) return true;
    pos += token.size();
  }
  return false;
}

bool has_call(const std::string& line, const std::string& name) {
  std::size_t pos = 0;
  while ((pos = line.find(name, pos)) != std::string::npos) {
    const bool left_ok =
        pos == 0 || (!std::isalnum(static_cast<unsigned char>(line[pos - 1])) &&
                     line[pos - 1] != '_' && line[pos - 1] != ':' &&
                     line[pos - 1] != '.' && line[pos - 1] != '>');
    std::size_t end = pos + name.size();
    while (end < line.size() && std::isspace(static_cast<unsigned char>(line[end]))) {
      ++end;
    }
    if (left_ok && end < line.size() && line[end] == '(') return true;
    pos += name.size();
  }
  return false;
}

/// Path taxonomy one file's rules depend on; computed once per file.
struct FileContext {
  std::string rel;
  bool is_header = false;
  bool is_library = false;     // src/ (+ the deliberate fixtures)
  bool is_assert_home = false;
  bool is_rng_home = false;
  bool is_obs_home = false;
  bool is_thread_home = false;
  bool is_json_io_home = false;
  bool is_serve = false;       // src/serve/: the serve-logging rule applies
  bool is_lock_home = false;   // the annotated Mutex/MutexLock live here
  bool is_profiler_home = false;  // src/obs/profiler*: signal APIs allowed
  bool is_provenance_home = false;  // src/bgp/ + src/obs/: record_edge allowed
  bool is_campaign_home = false;    // src/campaign/: estimator/sampler types
};

FileContext classify(const fs::path& path, const fs::path& root) {
  FileContext ctx;
  ctx.rel = generic_rel(path, root);
  ctx.is_header = has_extension(path, {".hpp", ".h"});
  const bool is_fixture = starts_with(ctx.rel, "tests/lint_fixtures/");
  ctx.is_library = starts_with(ctx.rel, "src/") || is_fixture;
  ctx.is_assert_home = ctx.rel == "src/support/assert.hpp";
  ctx.is_rng_home = starts_with(ctx.rel, "src/support/rng");
  ctx.is_obs_home = starts_with(ctx.rel, "src/obs/");
  ctx.is_thread_home = ctx.is_obs_home || starts_with(ctx.rel, "src/net/") ||
                       starts_with(ctx.rel, "src/serve/") ||
                       starts_with(ctx.rel, "src/support/parallel");
  ctx.is_json_io_home = ctx.is_obs_home || starts_with(ctx.rel, "src/store/");
  ctx.is_serve = starts_with(ctx.rel, "src/serve/") ||
                 starts_with(ctx.rel, "tests/lint_fixtures/serve_logging");
  ctx.is_lock_home = ctx.rel == "src/support/thread_annotations.hpp";
  ctx.is_profiler_home = starts_with(ctx.rel, "src/obs/profiler");
  ctx.is_provenance_home =
      starts_with(ctx.rel, "src/bgp/") || ctx.is_obs_home;
  ctx.is_campaign_home = starts_with(ctx.rel, "src/campaign/");
  return ctx;
}

// ---------------------------------------------------------------------------
// Pass 1: line rules (the PR-1 rule set, unchanged behavior)
// ---------------------------------------------------------------------------

void run_line_rules(const FileContext& ctx, const LexedFile& lexed,
                    std::vector<Finding>& findings) {
  const std::vector<std::string>& lines = lexed.stripped_lines;
  bool saw_pragma_once = false;
  bool emits_json = false;
  for (const std::string& line : lines) {
    if (line.find("#pragma once") != std::string::npos) saw_pragma_once = true;
    if (line.find("JsonWriter") != std::string::npos ||
        line.find("obs/json.hpp") != std::string::npos) {
      emits_json = true;
    }
  }

  if (ctx.is_header && !saw_pragma_once) {
    findings.push_back(
        {ctx.rel, 1, "pragma-once", "header is missing #pragma once"});
  }

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const std::size_t lineno = i + 1;

    if (!ctx.is_assert_home) {
      if (has_call(line, "assert")) {
        findings.push_back({ctx.rel, lineno, "raw-assert",
                            "use BGPSIM_ASSERT/BGPSIM_REQUIRE/BGPSIM_DASSERT "
                            "(support/assert.hpp) instead of assert()"});
      }
      if (has_call(line, "abort")) {
        findings.push_back({ctx.rel, lineno, "raw-assert",
                            "use BGPSIM_ASSERT (throws, catchable by drivers) "
                            "instead of abort()"});
      }
      if (line.find("<cassert>") != std::string::npos ||
          line.find("<assert.h>") != std::string::npos) {
        findings.push_back({ctx.rel, lineno, "raw-assert",
                            "include support/assert.hpp, not <cassert>"});
      }
    }

    if (!ctx.is_rng_home) {
      for (const char* banned :
           {"std::random_device", "std::mt19937", "std::mt19937_64",
            "std::minstd_rand", "std::default_random_engine"}) {
        if (line.find(banned) != std::string::npos) {
          findings.push_back({ctx.rel, lineno, "rng-policy",
                              std::string(banned) +
                                  " breaks run reproducibility; draw from an "
                                  "explicitly seeded bgpsim::Rng"});
        }
      }
      if (has_call(line, "rand") || has_call(line, "srand")) {
        findings.push_back({ctx.rel, lineno, "rng-policy",
                            "rand()/srand() is non-deterministic across "
                            "platforms; use bgpsim::Rng"});
      }
    }

    if (ctx.is_library && !ctx.is_obs_home) {
      if (line.find("std::chrono") != std::string::npos ||
          line.find("<chrono>") != std::string::npos ||
          line.find("<ctime>") != std::string::npos) {
        findings.push_back({ctx.rel, lineno, "timing-policy",
                            "raw timing in library code; go through "
                            "bgpsim::obs (BGPSIM_TIMED_SCOPE / obs::StopWatch) "
                            "so it compiles out under -DBGPSIM_OBS=OFF"});
      }
    }

    if (ctx.is_library && !ctx.is_thread_home) {
      if (line.find("std::thread") != std::string::npos ||
          line.find("std::jthread") != std::string::npos ||
          line.find("<thread>") != std::string::npos) {
        findings.push_back({ctx.rel, lineno, "thread-policy",
                            "raw threads in library code; fan out through "
                            "bgpsim::parallel_chunks (support/parallel.hpp) "
                            "so worker counts and joins stay in one place"});
      }
    }

    if (ctx.is_library && !ctx.is_json_io_home && emits_json &&
        line.find("std::ofstream") != std::string::npos) {
      findings.push_back({ctx.rel, lineno, "obs-io",
                          "direct std::ofstream in JSON-emitting library "
                          "code; emit through bgpsim::obs (RunReport / "
                          "EventLogSink), which owns file lifecycle"});
    }

    if (ctx.is_serve) {
      // Tighter than library-io: a request handler that logs to a shared
      // stdio stream interleaves across workers and is invisible to the
      // access log's seq ordering. fprintf-family and the raw streams are
      // all banned; report through record_request()/metrics instead.
      for (const char* banned : {"fprintf", "fputs", "fputc", "fwrite",
                                 "vfprintf", "perror"}) {
        // has_identifier, not has_call: the std::-qualified spellings must
        // fire too.
        if (has_identifier(line, banned)) {
          findings.push_back({ctx.rel, lineno, "serve-logging",
                              std::string(banned) +
                                  " in serve code; request reporting goes "
                                  "through the access log / metrics, not a "
                                  "worker's stdio"});
        }
      }
      for (const char* stream : {"stdout", "stderr", "clog"}) {
        if (has_identifier(line, stream)) {
          findings.push_back({ctx.rel, lineno, "serve-logging",
                              std::string(stream) +
                                  " referenced in serve code; handlers must "
                                  "not touch process stdio"});
        }
      }
    }

    if (!ctx.is_profiler_home) {
      // Signal handlers, interval timers, and the unwinder have one
      // sanctioned home: the sampling profiler, whose handler honors the
      // async-signal-safety contract (DESIGN.md §13). An ad-hoc handler
      // elsewhere can deadlock on malloc or a lock the interrupted thread
      // holds. has_identifier, not has_call: the std::-qualified spellings
      // and <signal.h>-style includes must fire too.
      for (const char* banned :
           {"signal", "sigaction", "setitimer", "getitimer", "sigaltstack",
            "backtrace", "backtrace_symbols", "backtrace_symbols_fd"}) {
        if (has_identifier(line, banned)) {
          findings.push_back({ctx.rel, lineno, "signal-safety",
                              std::string(banned) +
                                  " outside src/obs/profiler*; signal/timer/"
                                  "unwind APIs live with the profiler's "
                                  "async-signal-safety contract"});
        }
      }
    }

    // has_identifier, not has_call: the emitting sites are member calls
    // (recorder.record_edge / prov_->record_edge), which has_call's
    // free-function shape deliberately skips.
    if (!ctx.is_provenance_home && has_identifier(line, "record_edge")) {
      // One writer per invariant: infection edges come from the engines'
      // instrumented selection points (src/bgp/) or the obs layer's own
      // plumbing. A record_edge call anywhere else (analysis, serve, tools)
      // would inject edges the route table cannot corroborate, breaking the
      // trace-equals-table invariant the provenance tests pin.
      findings.push_back({ctx.rel, lineno, "provenance-home",
                          "record_edge outside src/bgp/ + src/obs/; "
                          "provenance edges are emitted only where the "
                          "engines change route selections"});
    }

    // Same one-home principle for the campaign statistics: the streaming
    // estimators and the stratified sampler are subtle enough (exact-integer
    // merging, counter-based reproducibility) that a second user copying or
    // re-instantiating them outside src/campaign/ would split the audit
    // surface. Everything else goes through run_campaign()'s report.
    if (!ctx.is_campaign_home) {
      for (const char* banned :
           {"MomentAccumulator", "P2Quantile", "QuantileReservoir",
            "CampaignSampler", "StratumEstimator"}) {
        if (has_identifier(line, banned)) {
          findings.push_back({ctx.rel, lineno, "campaign-home",
                              std::string(banned) +
                                  " outside src/campaign/; campaign "
                                  "statistics have exactly one home — "
                                  "consume them via the driver API"});
        }
      }
    }

    if (ctx.is_library) {
      if (has_identifier(line, "cout") || has_identifier(line, "cerr")) {
        findings.push_back({ctx.rel, lineno, "library-io",
                            "library code must not write to stdio; return "
                            "values / throw, or take an std::ostream&"});
      }
      if (has_call(line, "printf") || has_call(line, "puts")) {
        findings.push_back({ctx.rel, lineno, "library-io",
                            "library code must not write to stdio"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 2: token rules (the concurrency set)
// ---------------------------------------------------------------------------

bool ident_is(const Token& t, std::string_view text) {
  return t.kind == Token::Kind::Ident && t.text == text;
}
bool punct_is(const Token& t, std::string_view text) {
  return t.kind == Token::Kind::Punct && t.text == text;
}

/// True when tokens[i] starts a member call `.name(` / `->name(` of one of
/// `names`. Sets `line` to the call's line.
bool member_call(const std::vector<Token>& toks, std::size_t i,
                 std::initializer_list<std::string_view> names,
                 std::size_t& line) {
  if (!(punct_is(toks[i], ".") || punct_is(toks[i], "->"))) return false;
  if (i + 2 >= toks.size()) return false;
  const Token& name = toks[i + 1];
  if (name.kind != Token::Kind::Ident) return false;
  bool matched = false;
  for (const std::string_view candidate : names) {
    if (name.text == candidate) {
      matched = true;
      break;
    }
  }
  if (!matched || !punct_is(toks[i + 2], "(")) return false;
  line = name.line;
  return true;
}

/// Scan a balanced argument list starting at the '(' in tokens[open] and
/// report whether any identifier inside names a std::memory_order value.
bool args_name_memory_order(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (punct_is(t, "(")) {
      ++depth;
    } else if (punct_is(t, ")")) {
      if (--depth == 0) return false;
    } else if (t.kind == Token::Kind::Ident &&
               starts_with(t.text, "memory_order")) {
      return true;
    }
  }
  return false;  // unbalanced; treat as no order named
}

void run_token_rules(const FileContext& ctx, const LexedFile& lexed,
                     std::vector<Finding>& findings) {
  const std::vector<Token>& toks = lexed.tokens;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    std::size_t line = 0;

    // detached-thread: banned everywhere, including the thread homes and
    // tools/bench — a detached thread cannot be joined before exit.
    if (member_call(toks, i, {"detach"}, line)) {
      findings.push_back(
          {ctx.rel, line, "detached-thread",
           "never detach a thread; keep the handle and join it (the tsan "
           "lane and static destruction both depend on the join)"});
    }

    if (!ctx.is_library) continue;

    // raw-lock: direct mutex operations outside the RAII guard. The guard
    // itself (bgpsim::Mutex / MutexLock in thread_annotations.hpp) carries
    // per-line allow() suppressions rather than a path exemption, so the
    // sanctioned call sites are visible in the lint output conventions.
    if (member_call(toks, i, {"lock", "unlock", "try_lock"}, line)) {
      findings.push_back(
          {ctx.rel, line, "raw-lock",
           "direct ." + toks[i + 1].text +
               "() call; hold locks through bgpsim::MutexLock "
               "(support/thread_annotations.hpp) so Clang's thread-safety "
               "analysis sees the critical section"});
    }

    // seq-cst-atomic: member-call shapes of the std::atomic API without an
    // explicit memory_order argument. Spans multiple lines (the tokenizer
    // makes the argument scan trivial where a line regex would miss it).
    if (member_call(toks, i,
                    {"load", "store", "exchange", "fetch_add", "fetch_sub",
                     "fetch_and", "fetch_or", "fetch_xor",
                     "compare_exchange_weak", "compare_exchange_strong",
                     "test_and_set"},
                    line) &&
        !args_name_memory_order(toks, i + 2)) {
      findings.push_back(
          {ctx.rel, line, "seq-cst-atomic",
           "bare ." + toks[i + 1].text +
               "() defaults to memory_order_seq_cst; spell out the order the "
               "algorithm relies on (relaxed for counters, acquire/release "
               "for handoffs)"});
    }

    // mutex-annotation: a raw standard-library mutex or condvar in a header
    // is invisible to -Wthread-safety (libstdc++ types carry no capability
    // attributes). Require an adjacent annotation or, in practice, the
    // annotated bgpsim::Mutex.
    if (ctx.is_header && !ctx.is_lock_home && ident_is(toks[i], "std") &&
        i + 2 < toks.size() && punct_is(toks[i + 1], "::") &&
        toks[i + 2].kind == Token::Kind::Ident) {
      const std::string& type = toks[i + 2].text;
      if (type == "mutex" || type == "recursive_mutex" ||
          type == "timed_mutex" || type == "shared_mutex" ||
          type == "condition_variable" || type == "condition_variable_any") {
        const std::size_t decl_line = toks[i + 2].line;
        bool annotated = false;
        const std::size_t lo = decl_line > 3 ? decl_line - 3 : 1;
        const std::size_t hi =
            std::min(decl_line + 3, lexed.stripped_lines.size());
        for (std::size_t l = lo; l <= hi && !annotated; ++l) {
          const std::string& nearby = lexed.stripped_lines[l - 1];
          annotated = nearby.find("BGPSIM_CAPABILITY") != std::string::npos ||
                      nearby.find("BGPSIM_GUARDED_BY") != std::string::npos ||
                      nearby.find("BGPSIM_PT_GUARDED_BY") != std::string::npos ||
                      nearby.find("BGPSIM_SCOPED_CAPABILITY") != std::string::npos;
        }
        if (!annotated) {
          findings.push_back(
              {ctx.rel, decl_line, "mutex-annotation",
               "std::" + type +
                   " in a header without a thread-safety annotation; use "
                   "bgpsim::Mutex + BGPSIM_GUARDED_BY "
                   "(support/thread_annotations.hpp) so -Wthread-safety can "
                   "check the locking discipline"});
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Suppression filter
// ---------------------------------------------------------------------------

bool suppressed(const SuppressionMap& map, const Finding& f) {
  for (const std::size_t line : {f.line, f.line > 0 ? f.line - 1 : 0}) {
    const auto it = map.find(line);
    if (it != map.end() && it->second.count(f.rule) != 0) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

struct LintStats {
  std::size_t files = 0;
  std::size_t suppressed = 0;
};

void lint_file(const fs::path& path, const fs::path& root,
               std::vector<Finding>& findings, LintStats& stats) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    findings.push_back({path.string(), 0, "io", "cannot open file"});
    return;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const LexedFile lexed = lex(buffer.str());
  const FileContext ctx = classify(path, root);

  std::vector<Finding> raw;
  run_line_rules(ctx, lexed, raw);
  run_token_rules(ctx, lexed, raw);
  for (Finding& f : raw) {
    if (suppressed(lexed.suppressions, f)) {
      ++stats.suppressed;
    } else {
      findings.push_back(std::move(f));
    }
  }
}

void collect_sources(const fs::path& dir, std::vector<fs::path>& out) {
  if (!fs::exists(dir)) return;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file() &&
        has_extension(entry.path(), {".cpp", ".hpp", ".h", ".cc"})) {
      out.push_back(entry.path());
    }
  }
}

int check_headers(const Options& opts, std::vector<Finding>& findings) {
  std::vector<fs::path> headers;
  for (const auto& entry :
       fs::recursive_directory_iterator(opts.root / "src")) {
    if (entry.is_regular_file() && has_extension(entry.path(), {".hpp", ".h"})) {
      headers.push_back(entry.path());
    }
  }
  std::sort(headers.begin(), headers.end());
  for (const fs::path& header : headers) {
    std::ostringstream cmd;
    cmd << opts.cxx << " -std=c++20 -fsyntax-only -x c++ -I '"
        << (opts.root / "src").string() << "' '" << header.string() << "'";
    const int rc = std::system(cmd.str().c_str());
    if (rc != 0) {
      findings.push_back({generic_rel(header, opts.root), 1, "self-contained",
                          "header does not compile standalone (missing "
                          "includes or forward declarations)"});
    }
  }
  std::cout << "bgpsim-lint: " << headers.size()
            << " headers checked for self-containment\n";
  return 0;
}

// ---------------------------------------------------------------------------
// Report emitters
// ---------------------------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void write_json_report(std::ostream& out, const std::vector<Finding>& findings,
                       const LintStats& stats) {
  out << "{\"tool\":\"bgpsim-lint\",\"version\":\"2.0.0\",\"files\":"
      << stats.files << ",\"suppressed\":" << stats.suppressed
      << ",\"findings\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i != 0) out << ',';
    out << "{\"file\":\"" << json_escape(f.file) << "\",\"line\":" << f.line
        << ",\"rule\":\"" << json_escape(f.rule) << "\",\"message\":\""
        << json_escape(f.message) << "\"}";
  }
  out << "]}\n";
}

/// Minimal SARIF 2.1.0: enough for GitHub code scanning (runs / tool.driver
/// with rules / results with ruleId, message, and one physical location).
void write_sarif_report(std::ostream& out,
                        const std::vector<Finding>& findings) {
  out << "{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/"
         "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\","
         "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
         "\"name\":\"bgpsim-lint\",\"version\":\"2.0.0\","
         "\"informationUri\":\"https://example.invalid/bgpsim\",\"rules\":[";
  bool first = true;
  for (const RuleInfo& rule : kRules) {
    if (!first) out << ',';
    first = false;
    out << "{\"id\":\"" << rule.id << "\",\"shortDescription\":{\"text\":\""
        << json_escape(rule.description) << "\"}}";
  }
  out << "]}},\"results\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i != 0) out << ',';
    out << "{\"ruleId\":\"" << json_escape(f.rule)
        << "\",\"level\":\"error\",\"message\":{\"text\":\""
        << json_escape(f.message) << "\"},\"locations\":[{"
        << "\"physicalLocation\":{\"artifactLocation\":{\"uri\":\""
        << json_escape(f.file) << "\",\"uriBaseId\":\"SRCROOT\"},"
        << "\"region\":{\"startLine\":" << (f.line > 0 ? f.line : 1)
        << "}}}]}";
  }
  out << "]}]}\n";
}

bool write_report_file(const std::string& path, const std::string& what,
                       const std::vector<Finding>& findings,
                       const LintStats& stats) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "bgpsim-lint: cannot write " << what << " report to " << path
              << '\n';
    return false;
  }
  if (what == "json") {
    write_json_report(out, findings, stats);
  } else {
    write_sarif_report(out, findings);
  }
  return true;
}

int usage() {
  std::cerr
      << "usage: bgpsim_lint --root DIR [--check-headers] [--cxx CXX]\n"
         "                   [--json PATH] [--sarif PATH] [PATH...]\n"
         "  With no PATHs, lints DIR/{src,tools,bench,examples}.\n"
         "  Suppress one finding with a comment on (or above) its line:\n"
         "    // bgpsim-lint: allow(rule-name)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      opts.root = argv[++i];
    } else if (arg == "--check-headers") {
      opts.check_headers = true;
    } else if (arg == "--cxx" && i + 1 < argc) {
      opts.cxx = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      opts.json_path = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      opts.sarif_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      opts.explicit_paths.emplace_back(arg);
    }
  }
  if (opts.root.empty()) return usage();
  std::error_code ec;
  opts.root = fs::canonical(opts.root, ec);
  if (ec) {
    std::cerr << "bgpsim-lint: bad --root: " << ec.message() << '\n';
    return 2;
  }

  std::vector<fs::path> files;
  if (opts.explicit_paths.empty()) {
    for (const char* dir : {"src", "tools", "bench", "examples"}) {
      collect_sources(opts.root / dir, files);
    }
  } else {
    for (const fs::path& p : opts.explicit_paths) {
      if (fs::is_directory(p)) {
        collect_sources(p, files);
      } else {
        files.push_back(p);
      }
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  LintStats stats;
  stats.files = files.size();
  for (const fs::path& file : files) {
    lint_file(file, opts.root, findings, stats);
  }
  if (opts.check_headers) check_headers(opts, findings);

  for (const Finding& f : findings) {
    std::cout << f.file << ':' << f.line << ": " << f.rule << ": " << f.message
              << '\n';
  }
  std::cout << "bgpsim-lint: " << files.size() << " files, " << findings.size()
            << " finding(s), " << stats.suppressed << " suppressed\n";

  if (!opts.json_path.empty() &&
      !write_report_file(opts.json_path, "json", findings, stats)) {
    return 2;
  }
  if (!opts.sarif_path.empty() &&
      !write_report_file(opts.sarif_path, "sarif", findings, stats)) {
    return 2;
  }
  return findings.empty() ? 0 : 1;
}
