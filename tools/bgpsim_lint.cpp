// bgpsim-lint — domain-specific linter for rules no generic tool knows.
//
// Rules (see DESIGN.md "Correctness tooling"):
//   pragma-once    every header carries #pragma once
//   raw-assert     no assert()/abort()/<cassert> outside support/assert.hpp;
//                  invariants must throw via BGPSIM_ASSERT so experiment
//                  drivers can catch, log the scenario seed, and continue
//   rng-policy     no std::random_device / std:: engine types / rand()
//                  outside support/rng.*; all randomness flows through the
//                  deterministic, explicitly seeded bgpsim::Rng
//   library-io     no std::cout / std::cerr / printf in src/ library code —
//                  libraries report through return values and exceptions,
//                  only tools/examples/benches own stdio
//   timing-policy  no raw std::chrono / <chrono> in src/ outside src/obs/ —
//                  all timing flows through bgpsim::obs (BGPSIM_TIMED_SCOPE,
//                  obs::StopWatch) so instrumentation compiles out under
//                  -DBGPSIM_OBS=OFF
//   thread-policy  no std::thread / std::jthread / <thread> in src/ outside
//                  src/obs/, src/net/, src/serve/, and src/support/parallel*
//                  — sweep fan-out goes through bgpsim::parallel_chunks,
//                  background sampling through obs::heartbeat, and the query
//                  service's worker pool lives in src/serve/; ad-hoc threads
//                  elsewhere dodge both the join discipline and the OBS=OFF
//                  story
//   obs-io         no direct std::ofstream JSON emission in src/ outside
//                  src/obs/ and src/store/ — a file that uses JsonWriter (or
//                  includes obs/json.hpp) must route file output through the
//                  obs layer (RunReport, EventLogSink, TraceSink), which owns
//                  directory creation, truncation, and flush policy; the
//                  store exemption exists because snapshot.cpp owns binary
//                  file I/O and also emits the `snapshot info` JSON summary
//   self-contained every public header under src/ compiles standalone
//                  (--check-headers; invokes the compiler per header)
//
// Files under tests/lint_fixtures/ are linted as library code: they are
// deliberate violations that pin each rule's behavior in CI (WILL_FAIL).
//
// Exit status: 0 clean, 1 findings, 2 usage or I/O error. Diagnostics are
// file:line: rule: message, one per line, so editors and CI annotate them.
#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct Options {
  fs::path root;
  std::vector<fs::path> explicit_paths;
  bool check_headers = false;
  std::string cxx = "c++";
};

bool has_extension(const fs::path& p, std::initializer_list<const char*> exts) {
  const std::string ext = p.extension().string();
  for (const char* e : exts) {
    if (ext == e) return true;
  }
  return false;
}

std::string generic_rel(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(p, root, ec);
  if (ec || rel.empty()) return p.generic_string();
  return rel.generic_string();
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// Strip // and /* */ comments and the contents of string/char literals so
/// rule regexes only see code. Keeps line structure intact for line numbers.
std::string strip_comments_and_strings(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  enum class State { Code, LineComment, BlockComment, String, Char };
  State state = State::Code;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::Code:
        if (c == '/' && next == '/') {
          state = State::LineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::BlockComment;
          ++i;
        } else if (c == '"') {
          state = State::String;
          out.push_back(c);
        } else if (c == '\'') {
          state = State::Char;
          out.push_back(c);
        } else {
          out.push_back(c);
        }
        break;
      case State::LineComment:
        if (c == '\n') {
          state = State::Code;
          out.push_back(c);
        }
        break;
      case State::BlockComment:
        if (c == '*' && next == '/') {
          state = State::Code;
          ++i;
        } else if (c == '\n') {
          out.push_back(c);
        }
        break;
      case State::String:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::Code;
          out.push_back(c);
        } else if (c == '\n') {
          out.push_back(c);  // unterminated; keep lines aligned
        }
        break;
      case State::Char:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::Code;
          out.push_back(c);
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (const char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  lines.push_back(current);
  return lines;
}

/// True when `token` occurs in `line` as a whole identifier (not a suffix of
/// a longer name like static_assert or BGPSIM_ASSERT).
bool has_identifier(const std::string& line, const std::string& token) {
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool left_ok =
        pos == 0 || (!std::isalnum(static_cast<unsigned char>(line[pos - 1])) &&
                     line[pos - 1] != '_');
    const std::size_t end = pos + token.size();
    const bool right_ok =
        end >= line.size() ||
        (!std::isalnum(static_cast<unsigned char>(line[end])) && line[end] != '_');
    if (left_ok && right_ok) return true;
    pos += token.size();
  }
  return false;
}

bool has_call(const std::string& line, const std::string& name) {
  std::size_t pos = 0;
  while ((pos = line.find(name, pos)) != std::string::npos) {
    const bool left_ok =
        pos == 0 || (!std::isalnum(static_cast<unsigned char>(line[pos - 1])) &&
                     line[pos - 1] != '_' && line[pos - 1] != ':' &&
                     line[pos - 1] != '.' && line[pos - 1] != '>');
    std::size_t end = pos + name.size();
    while (end < line.size() && std::isspace(static_cast<unsigned char>(line[end]))) {
      ++end;
    }
    if (left_ok && end < line.size() && line[end] == '(') return true;
    pos += name.size();
  }
  return false;
}

void lint_file(const fs::path& path, const fs::path& root,
               std::vector<Finding>& findings) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    findings.push_back({path.string(), 0, "io", "cannot open file"});
    return;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string raw = buffer.str();
  const std::string code = strip_comments_and_strings(raw);
  const std::vector<std::string> lines = split_lines(code);

  const std::string rel = generic_rel(path, root);
  const bool is_header = has_extension(path, {".hpp", ".h"});
  const bool is_fixture = starts_with(rel, "tests/lint_fixtures/");
  const bool is_library = starts_with(rel, "src/") || is_fixture;
  const bool is_assert_home = rel == "src/support/assert.hpp";
  const bool is_rng_home = starts_with(rel, "src/support/rng");
  const bool is_obs_home = starts_with(rel, "src/obs/");
  const bool is_thread_home = is_obs_home || starts_with(rel, "src/net/") ||
                              starts_with(rel, "src/serve/") ||
                              starts_with(rel, "src/support/parallel");
  // A library file that writes JSON (uses JsonWriter / includes obs/json.hpp)
  // must not open files itself — the obs sinks own that. src/store/ is the
  // other sanctioned home: the snapshot codec owns binary file I/O and also
  // emits the `snapshot info` JSON summary.
  const bool is_json_io_home = is_obs_home || starts_with(rel, "src/store/");
  const bool emits_json = code.find("JsonWriter") != std::string::npos ||
                          code.find("obs/json.hpp") != std::string::npos;

  if (is_header && code.find("#pragma once") == std::string::npos) {
    findings.push_back({rel, 1, "pragma-once", "header is missing #pragma once"});
  }

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const std::size_t lineno = i + 1;

    if (!is_assert_home) {
      if (has_call(line, "assert")) {
        findings.push_back({rel, lineno, "raw-assert",
                            "use BGPSIM_ASSERT/BGPSIM_REQUIRE/BGPSIM_DASSERT "
                            "(support/assert.hpp) instead of assert()"});
      }
      if (has_call(line, "abort")) {
        findings.push_back({rel, lineno, "raw-assert",
                            "use BGPSIM_ASSERT (throws, catchable by drivers) "
                            "instead of abort()"});
      }
      if (line.find("<cassert>") != std::string::npos ||
          line.find("<assert.h>") != std::string::npos) {
        findings.push_back({rel, lineno, "raw-assert",
                            "include support/assert.hpp, not <cassert>"});
      }
    }

    if (!is_rng_home) {
      for (const char* banned :
           {"std::random_device", "std::mt19937", "std::mt19937_64",
            "std::minstd_rand", "std::default_random_engine"}) {
        if (line.find(banned) != std::string::npos) {
          findings.push_back({rel, lineno, "rng-policy",
                              std::string(banned) +
                                  " breaks run reproducibility; draw from an "
                                  "explicitly seeded bgpsim::Rng"});
        }
      }
      if (has_call(line, "rand") || has_call(line, "srand")) {
        findings.push_back({rel, lineno, "rng-policy",
                            "rand()/srand() is non-deterministic across "
                            "platforms; use bgpsim::Rng"});
      }
    }

    if (is_library && !is_obs_home) {
      if (line.find("std::chrono") != std::string::npos ||
          line.find("<chrono>") != std::string::npos ||
          line.find("<ctime>") != std::string::npos) {
        findings.push_back({rel, lineno, "timing-policy",
                            "raw timing in library code; go through "
                            "bgpsim::obs (BGPSIM_TIMED_SCOPE / obs::StopWatch) "
                            "so it compiles out under -DBGPSIM_OBS=OFF"});
      }
    }

    if (is_library && !is_thread_home) {
      if (line.find("std::thread") != std::string::npos ||
          line.find("std::jthread") != std::string::npos ||
          line.find("<thread>") != std::string::npos) {
        findings.push_back({rel, lineno, "thread-policy",
                            "raw threads in library code; fan out through "
                            "bgpsim::parallel_chunks (support/parallel.hpp) "
                            "so worker counts and joins stay in one place"});
      }
    }

    if (is_library && !is_json_io_home && emits_json &&
        line.find("std::ofstream") != std::string::npos) {
      findings.push_back({rel, lineno, "obs-io",
                          "direct std::ofstream in JSON-emitting library "
                          "code; emit through bgpsim::obs (RunReport / "
                          "EventLogSink), which owns file lifecycle"});
    }

    if (is_library) {
      if (has_identifier(line, "cout") || has_identifier(line, "cerr")) {
        findings.push_back({rel, lineno, "library-io",
                            "library code must not write to stdio; return "
                            "values / throw, or take an std::ostream&"});
      }
      if (has_call(line, "printf") || has_call(line, "puts")) {
        findings.push_back({rel, lineno, "library-io",
                            "library code must not write to stdio"});
      }
    }
  }
}

void collect_sources(const fs::path& dir, std::vector<fs::path>& out) {
  if (!fs::exists(dir)) return;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file() &&
        has_extension(entry.path(), {".cpp", ".hpp", ".h", ".cc"})) {
      out.push_back(entry.path());
    }
  }
}

int check_headers(const Options& opts, std::vector<Finding>& findings) {
  std::vector<fs::path> headers;
  for (const auto& entry :
       fs::recursive_directory_iterator(opts.root / "src")) {
    if (entry.is_regular_file() && has_extension(entry.path(), {".hpp", ".h"})) {
      headers.push_back(entry.path());
    }
  }
  std::sort(headers.begin(), headers.end());
  for (const fs::path& header : headers) {
    std::ostringstream cmd;
    cmd << opts.cxx << " -std=c++20 -fsyntax-only -x c++ -I '"
        << (opts.root / "src").string() << "' '" << header.string() << "'";
    const int rc = std::system(cmd.str().c_str());
    if (rc != 0) {
      findings.push_back({generic_rel(header, opts.root), 1, "self-contained",
                          "header does not compile standalone (missing "
                          "includes or forward declarations)"});
    }
  }
  std::cout << "bgpsim-lint: " << headers.size()
            << " headers checked for self-containment\n";
  return 0;
}

int usage() {
  std::cerr << "usage: bgpsim_lint --root DIR [--check-headers] [--cxx CXX] "
               "[PATH...]\n"
               "  With no PATHs, lints DIR/{src,tools,bench,examples}.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      opts.root = argv[++i];
    } else if (arg == "--check-headers") {
      opts.check_headers = true;
    } else if (arg == "--cxx" && i + 1 < argc) {
      opts.cxx = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      opts.explicit_paths.emplace_back(arg);
    }
  }
  if (opts.root.empty()) return usage();
  std::error_code ec;
  opts.root = fs::canonical(opts.root, ec);
  if (ec) {
    std::cerr << "bgpsim-lint: bad --root: " << ec.message() << '\n';
    return 2;
  }

  std::vector<fs::path> files;
  if (opts.explicit_paths.empty()) {
    for (const char* dir : {"src", "tools", "bench", "examples"}) {
      collect_sources(opts.root / dir, files);
    }
  } else {
    for (const fs::path& p : opts.explicit_paths) {
      if (fs::is_directory(p)) {
        collect_sources(p, files);
      } else {
        files.push_back(p);
      }
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const fs::path& file : files) lint_file(file, opts.root, findings);
  if (opts.check_headers) check_headers(opts, findings);

  for (const Finding& f : findings) {
    std::cout << f.file << ':' << f.line << ": " << f.rule << ": " << f.message
              << '\n';
  }
  std::cout << "bgpsim-lint: " << files.size() << " files, " << findings.size()
            << " finding(s)\n";
  return findings.empty() ? 0 : 1;
}
