// bgpsim — command-line front end to the library.
//
//   bgpsim generate --ases N [--seed S] --out topo.txt
//       synthesize an Internet and export it in CAIDA serial-1 format
//   bgpsim info (--topo file | --ases N [--seed S])
//       topology statistics: tiers, transit share, depth histogram
//   bgpsim attack (--topo file | --ases N) --victim ASN --attacker ASN
//                 [--subprefix] [--forged] [--core K] [--explain ASN]
//                 [--trace-pollution]
//       simulate one hijack, optionally with ROV deployed at the top-K core;
//       --explain replays it on the generation engine and prints the named
//       AS's per-generation route-decision history (candidates, rank, why
//       displaced); --trace-pollution records infection provenance and
//       appends a pollution_trace JSON block (depth histogram, choke
//       points, deployment frontier) — equivalent to BGPSIM_PROVENANCE=1
//   bgpsim attribution (--topo file | --ases N) --victim ASN --attacker ASN
//                      [--core K] [--top K] [--cuts N] [--json]
//       traced exact-prefix hijack plus choke-point attribution: rank
//       transit ASes by infection-subtree size and (for the top N, default
//       3) re-run the attack with each added to the validator set to report
//       the exact counterfactual pollution cut
//   bgpsim sweep (--topo file | --ases N) --victim ASN [--core K]
//       attack the victim from every transit AS; print the profile
//   bgpsim detect (--topo file | --ases N) [--attacks N] [--probes K]
//       random transit attacks vs a top-K probe set; print the miss rate
//   bgpsim promcheck --file metrics.prom
//       validate a Prometheus text exposition file with the in-repo parser
//       (the `promtool check metrics` stand-in CI uses); prints a summary
//   bgpsim snapshot save (--topo file | --ases N [--seed S]) --out world.snap
//                        [--targets all|transit|ASN,ASN,...]
//       converge the legitimate baseline for each target AS and persist
//       topology + params + baselines as a versioned binary snapshot
//       (default targets: every transit AS)
//   bgpsim snapshot info --file world.snap [--json]
//       header and section summary of a snapshot
//   bgpsim snapshot load --file world.snap
//       load + validate, then recompute one stored baseline cold and
//       compare route-for-route (an end-to-end integrity check)
//   bgpsim campaign (--snapshot world.snap | --topo file | --ases N)
//                   [--samples N] [--target-ci X] [--batch N] [--workers N]
//                   [--victims all|transit|ASN,ASN,...] [--deployment-top K]
//                   [--probes K] [--sample-seed S]
//       streaming Monte-Carlo hijack-impact campaign: stratified
//       (attacker, victim) sampling over the warm-start engine, pooled
//       pollution-fraction estimate with a normal-approximation CI, early
//       stop once the CI half-width reaches --target-ci; prints the JSON
//       report (schema bgpsim.campaign.v1) to stdout. With --snapshot the
//       victim pool is the snapshot's baseline targets; otherwise baselines
//       for --victims (default: every transit AS) are converged first
//   bgpsim serve --snapshot world.snap [--port N] [--workers N]
//                [--max-body BYTES] [--access-log file.ndjson]
//       long-lived loopback query service: POST /v1/attack, GET
//       /v1/topology, GET /metrics, GET /healthz, GET /statusz; drains and
//       exits 0 on SIGTERM/SIGINT. --access-log writes one NDJSON record
//       per request (equivalent to BGPSIM_ACCESS_LOG=<file>; slow-request
//       capture via BGPSIM_SLOW_REQ_US)
//
// Observability (any command):
//   --obs [file]       dump the metrics-registry snapshot after the command:
//                      a human summary to stdout (time.* histograms as
//                      p50/p90/p99), or full JSON when <file> is given
//   --trace <file>     write a chrome://tracing / Perfetto trace of the run
//                      (equivalent to BGPSIM_TRACE=<file>)
//   --eventlog <file>  write the structured NDJSON event log there
//                      (equivalent to BGPSIM_EVENTLOG=<file>)
//   --progress         heartbeat status line on stderr while the command
//                      runs (equivalent to BGPSIM_PROGRESS_STDERR=1); the
//                      sampler also honors BGPSIM_PROM_FILE/BGPSIM_PROM_PORT
//   --profile <file>   sample the command with the in-process SIGPROF CPU
//                      profiler and write a collapsed-stack (folded) profile
//                      there on exit — feed it to flamegraph.pl, speedscope,
//                      or bgpsim-profview (equivalent to
//                      BGPSIM_PROFILE=<file>; rate via BGPSIM_PROFILE_HZ)
#include <poll.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/attribution.hpp"
#include "campaign/driver.hpp"
#include "analysis/detector_experiment.hpp"
#include "analysis/vulnerability.hpp"
#include "bgp/introspect.hpp"
#include "core/scenario.hpp"
#include "defense/deployment.hpp"
#include "obs/obs.hpp"
#include "obs/promtext.hpp"
#include "serve/query_server.hpp"
#include "serve/request_obs.hpp"
#include "serve/service.hpp"
#include "store/snapshot.hpp"
#include "support/env.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "topology/caida_writer.hpp"

using namespace bgpsim;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  std::optional<std::uint64_t> number(const std::string& key) const {
    const auto it = options.find(key);
    if (it == options.end()) return std::nullopt;
    return parse_u64(it->second);
  }

  std::optional<std::string> text(const std::string& key) const {
    const auto it = options.find(key);
    if (it == options.end()) return std::nullopt;
    return it->second;
  }

  bool flag(const std::string& key) const { return options.contains(key); }
};

Args parse_args(int argc, char** argv) {
  Args args;
  int first_option = 2;
  if (argc >= 2) args.command = argv[1];
  // `snapshot` takes a subcommand word: fold "snapshot save" into the
  // command key so option parsing stays uniform.
  if (args.command == "snapshot" && argc >= 3 &&
      std::string(argv[2]).rfind("--", 0) != 0) {
    args.command += std::string("-") + argv[2];
    first_option = 3;
  }
  for (int i = first_option; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) throw ConfigError("unexpected argument: " + key);
    key = key.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.options[key] = argv[++i];
    } else {
      args.options[key] = "";  // boolean flag
    }
  }
  return args;
}

Scenario load_scenario(const Args& args) {
  ScenarioParams params;
  if (const auto path = args.text("topo")) {
    return Scenario::load_caida(*path, params);
  }
  params.topology.total_ases =
      static_cast<std::uint32_t>(args.number("ases").value_or(4000));
  params.topology.seed = args.number("seed").value_or(42);
  return Scenario::generate(params);
}

int cmd_generate(const Args& args) {
  const auto out = args.text("out");
  if (!out) throw ConfigError("generate requires --out <file>");
  InternetGenParams params;
  params.total_ases = static_cast<std::uint32_t>(args.number("ases").value_or(4000));
  params.seed = args.number("seed").value_or(42);
  const AsGraph graph = generate_internet(params);
  save_caida_file(*out, graph);
  std::printf("wrote %u ASes / %llu links to %s\n", graph.num_ases(),
              static_cast<unsigned long long>(graph.num_links()), out->c_str());
  return 0;
}

int cmd_info(const Args& args) {
  const Scenario scenario = load_scenario(args);
  const AsGraph& g = scenario.graph();
  std::printf("ases: %u  links: %llu  (E/N %.2f)\n", g.num_ases(),
              static_cast<unsigned long long>(g.num_links()),
              static_cast<double>(g.num_links()) / g.num_ases());
  std::printf("tier-1 clique (%zu):", scenario.tiers().tier1.size());
  for (const AsId t1 : scenario.tiers().tier1) std::printf(" %u", g.asn(t1));
  std::printf("\ntier-2: %zu   transit: %zu (%.1f%%)   regions: %u\n",
              scenario.tiers().tier2.size(), scenario.transit().size(),
              100.0 * scenario.transit().size() / g.num_ases(), g.num_regions());
  std::map<std::uint16_t, std::uint32_t> depth_hist;
  for (AsId v = 0; v < g.num_ases(); ++v) ++depth_hist[scenario.depth()[v]];
  std::printf("depth histogram:");
  for (const auto& [depth, count] : depth_hist) {
    if (depth == kUnreachableDepth) {
      std::printf("  unreachable:%u", count);
    } else {
      std::printf("  %u:%u", depth, count);
    }
  }
  std::printf("\n");
  return 0;
}

/// The attack commands' `pollution_trace` block: attribution of the most
/// recent (traced) attack, rendered as one JSON line on stdout.
void print_pollution_trace(const AsGraph& g, const HijackSimulator& sim,
                           AsId target, AsId attacker) {
  const AttributionReport report = compute_attribution(
      g, sim.routes(), target, attacker, sim.last_provenance());
  std::printf("pollution_trace: %s\n",
              attribution_trace_json(g, report).c_str());
}

int cmd_attack(const Args& args) {
  const Scenario scenario = load_scenario(args);
  const AsGraph& g = scenario.graph();
  const auto victim_asn = args.number("victim");
  const auto attacker_asn = args.number("attacker");
  if (!victim_asn || !attacker_asn) {
    throw ConfigError("attack requires --victim and --attacker ASNs");
  }
  BGPSIM_PROGRESS(1);
  BGPSIM_PROGRESS_PHASE("cli.attack");
  HijackSimulator sim = scenario.make_simulator();
  if (const auto core = args.number("core")) {
    sim.set_validators(
        to_filter_set(g, top_k_deployment(g, *core)).bitset());
  }
  // Constructed only when tracing (the edge buffer is megabytes).
  std::optional<obs::ProvenanceRecorder> recorder;
  if (args.flag("trace-pollution")) {
    recorder.emplace();
    sim.set_provenance(&*recorder);
  }
  AttackOptions options;
  if (args.flag("subprefix")) options.kind = AttackKind::SubPrefix;
  options.forged_origin = args.flag("forged");

  if (const auto explain_asn = args.number("explain")) {
    if (options.forged_origin || options.kind == AttackKind::SubPrefix) {
      throw ConfigError("--explain supports the plain exact-prefix attack");
    }
    const AsId watched = g.require(static_cast<Asn>(*explain_asn));
    DecisionHistory history;
    const auto result =
        sim.attack_explained(g.require(static_cast<Asn>(*victim_asn)),
                             g.require(static_cast<Asn>(*attacker_asn)),
                             watched, history);
    std::printf("exact-prefix hijack of AS%llu by AS%llu "
                "(generation engine, %u generations):\n",
                static_cast<unsigned long long>(*victim_asn),
                static_cast<unsigned long long>(*attacker_asn),
                result.generations);
    std::printf("  polluted: %u of %u ASes (%.1f%%)\n\n", result.polluted_ases,
                g.num_ases(), 100.0 * result.polluted_ases / g.num_ases());
    std::fputs(render_decision_history(g, history).c_str(), stdout);
    if (recorder) {
      print_pollution_trace(g, sim, g.require(static_cast<Asn>(*victim_asn)),
                            g.require(static_cast<Asn>(*attacker_asn)));
    }
    return 0;
  }

  const auto result =
      sim.attack_ex(g.require(static_cast<Asn>(*victim_asn)),
                    g.require(static_cast<Asn>(*attacker_asn)), options);
  std::printf("%s%s hijack of AS%llu by AS%llu:\n",
              options.forged_origin ? "forged-origin " : "",
              options.kind == AttackKind::SubPrefix ? "sub-prefix" : "exact-prefix",
              static_cast<unsigned long long>(*victim_asn),
              static_cast<unsigned long long>(*attacker_asn));
  std::printf("  polluted: %u of %u ASes (%.1f%%), %.1f%% of address space\n",
              result.polluted_ases, g.num_ases(),
              100.0 * result.polluted_ases / g.num_ases(),
              100.0 * result.polluted_address_fraction);
  if (recorder) {
    print_pollution_trace(g, sim, result.target, result.attacker);
  }
  return 0;
}

int cmd_attribution(const Args& args) {
  const Scenario scenario = load_scenario(args);
  const AsGraph& g = scenario.graph();
  const auto victim_asn = args.number("victim");
  const auto attacker_asn = args.number("attacker");
  if (!victim_asn || !attacker_asn) {
    throw ConfigError("attribution requires --victim and --attacker ASNs");
  }
  const auto top = static_cast<std::size_t>(args.number("top").value_or(10));
  const auto cuts = static_cast<std::size_t>(args.number("cuts").value_or(3));
  const AsId victim = g.require(static_cast<Asn>(*victim_asn));
  const AsId attacker = g.require(static_cast<Asn>(*attacker_asn));

  // The traced attack plus one exact counterfactual re-run per cut.
  BGPSIM_PROGRESS(1 + (cuts < top ? cuts : top));
  BGPSIM_PROGRESS_PHASE("cli.attribution");
  HijackSimulator sim = scenario.make_simulator();
  if (const auto core = args.number("core")) {
    sim.set_validators(
        to_filter_set(g, top_k_deployment(g, *core)).bitset());
  }
  obs::ProvenanceRecorder recorder;
  sim.set_provenance(&recorder);
  sim.attack(victim, attacker);

  AttributionReport report = compute_attribution(
      g, sim.routes(), victim, attacker, sim.last_provenance(), top);
  annotate_counterfactual_cuts(g, scenario.sim_config(), sim.validators(),
                               report, cuts);

  if (args.flag("json")) {
    std::printf("%s\n", attribution_trace_json(g, report).c_str());
    return 0;
  }

  std::printf("attribution: AS%llu hijacked by AS%llu — %u polluted ASes, "
              "max depth %u\n",
              static_cast<unsigned long long>(*victim_asn),
              static_cast<unsigned long long>(*attacker_asn), report.polluted,
              report.max_depth);
  std::printf("  trace: %llu edges recorded, %llu dropped%s\n",
              static_cast<unsigned long long>(report.edges_recorded),
              static_cast<unsigned long long>(report.edges_dropped),
              report.trace_complete ? "" : "  (incomplete: raise "
                                           "BGPSIM_PROVENANCE_RING)");
  std::printf("  depth histogram:");
  for (std::uint32_t d = 1; d < report.depth_histogram.size(); ++d) {
    std::printf("  %u:%u", d, report.depth_histogram[d]);
  }
  std::printf("\n");
  if (report.blocked_offers != 0) {
    std::printf("  deployment frontier: %llu bogus offers blocked at %u "
                "validators (min depth %u, mean %.1f)\n",
                static_cast<unsigned long long>(report.blocked_offers),
                report.blocked_sites, report.frontier_min_depth,
                report.frontier_mean_depth);
  }
  std::printf("  choke points (subtree = polluted ASes routed through):\n");
  for (const ChokePoint& cp : report.choke_points) {
    if (cp.counterfactual_cut >= 0) {
      std::printf("    AS%-10u subtree %-8u exact cut if validating: %lld\n",
                  g.asn(cp.as), cp.subtree,
                  static_cast<long long>(cp.counterfactual_cut));
    } else {
      std::printf("    AS%-10u subtree %-8u\n", g.asn(cp.as), cp.subtree);
    }
  }
  return 0;
}

int cmd_sweep(const Args& args) {
  const Scenario scenario = load_scenario(args);
  const AsGraph& g = scenario.graph();
  const auto victim_asn = args.number("victim");
  if (!victim_asn) throw ConfigError("sweep requires --victim ASN");
  const AsId victim = g.require(static_cast<Asn>(*victim_asn));

  VulnerabilityAnalyzer analyzer(g, scenario.sim_config());
  std::optional<FilterSet> filters;
  if (const auto core = args.number("core")) {
    filters = to_filter_set(g, top_k_deployment(g, *core));
  }
  BGPSIM_PROGRESS(scenario.transit().size());
  const auto curve = analyzer.sweep(victim, scenario.transit(),
                                    filters ? &*filters : nullptr);
  std::printf("AS%llu (depth %u): %zu transit attackers\n",
              static_cast<unsigned long long>(*victim_asn),
              scenario.depth()[victim], curve.attackers.size());
  std::printf("  mean pollution %.1f  median %.0f  max %.0f\n",
              curve.stats.mean(),
              quantile(std::vector<double>(curve.pollution.begin(),
                                           curve.pollution.end()),
                       0.5),
              curve.stats.max());
  std::printf("  attackers polluting >=10%% of the net: %u\n",
              curve.attackers_at_least(g.num_ases() / 10));
  return 0;
}

int cmd_detect(const Args& args) {
  const Scenario scenario = load_scenario(args);
  const AsGraph& g = scenario.graph();
  const auto attacks = static_cast<std::uint32_t>(args.number("attacks").value_or(1000));
  const auto k = args.number("probes").value_or(scenario.scaled_count(62));

  DetectorExperiment experiment(g, scenario.sim_config());
  Rng rng(args.number("seed").value_or(42));
  BGPSIM_PROGRESS(attacks);
  const auto samples = experiment.sample_transit_attacks(attacks, rng);
  const std::vector<ProbeSet> probe_sets{ProbeSet::top_k(g, k)};
  const auto results = experiment.run(samples, probe_sets);
  const auto& r = results[0];
  std::printf("%s vs %u random transit attacks:\n", r.label.c_str(), attacks);
  std::printf("  missed completely: %u (%.1f%%)\n", r.missed,
              100.0 * r.missed_fraction);
  if (r.missed > 0) {
    std::printf("  largest undetected attack: %u polluted ASes\n",
                static_cast<std::uint32_t>(r.missed_pollution.max()));
  }
  return 0;
}

int cmd_promcheck(const Args& args) {
  const auto file = args.text("file");
  if (!file) throw ConfigError("promcheck requires --file <metrics.prom>");
  std::ifstream in(*file, std::ios::binary);
  if (!in) throw ConfigError("cannot read " + *file);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const obs::RegistrySnapshot snap = obs::parse_prom_text(buffer.str());
  std::uint64_t samples = 0;
  for (const auto& [name, hist] : snap.histograms) {
    (void)name;
    samples += hist.count;
  }
  std::printf("%s: ok — %zu counters, %zu gauges, %zu histograms "
              "(%llu observations)\n",
              file->c_str(), snap.counters.size(), snap.gauges.size(),
              snap.histograms.size(), static_cast<unsigned long long>(samples));
  return 0;
}

/// Resolve the --targets option into dense ids: "all", "transit" (default),
/// or a comma-separated ASN list.
std::vector<AsId> snapshot_targets(const Scenario& scenario, const Args& args) {
  const std::string spec = args.text("targets").value_or("transit");
  if (spec == "transit" || spec.empty()) return scenario.transit();
  if (spec == "all") {
    std::vector<AsId> all(scenario.graph().num_ases());
    for (AsId v = 0; v < scenario.graph().num_ases(); ++v) all[v] = v;
    return all;
  }
  std::vector<AsId> targets;
  for (const std::string_view field : split(spec, ',')) {
    const auto asn = parse_u64(trim(field));
    if (!asn) throw ConfigError("bad --targets entry: " + std::string(field));
    targets.push_back(scenario.graph().require(static_cast<Asn>(*asn)));
  }
  return targets;
}

int cmd_snapshot_save(const Args& args) {
  const auto out = args.text("out");
  if (!out) throw ConfigError("snapshot save requires --out <file>");
  const Scenario scenario = load_scenario(args);

  const std::vector<AsId> targets = snapshot_targets(scenario, args);
  BGPSIM_PROGRESS(targets.size());
  BGPSIM_PROGRESS_PHASE("snapshot.baselines");

  store::Snapshot snapshot;
  snapshot.graph = scenario.graph();
  snapshot.params = scenario.snapshot_params();
  snapshot.baselines = store::BaselineStore::compute(
      scenario.graph(), scenario.policy(), targets);
  store::save_snapshot(*out, snapshot);

  const store::SnapshotInfo info = store::describe_snapshot(snapshot);
  std::printf("wrote %s: %u ASes, %llu links, %u baseline targets "
              "(checksum %llu)\n",
              out->c_str(), info.ases,
              static_cast<unsigned long long>(info.links),
              info.baseline_targets,
              static_cast<unsigned long long>(info.topology_checksum));
  return 0;
}

int cmd_snapshot_info(const Args& args) {
  const auto file = args.text("file");
  if (!file) throw ConfigError("snapshot info requires --file <file>");
  const store::Snapshot snapshot = store::load_snapshot(*file);
  const store::SnapshotInfo info = store::describe_snapshot(snapshot);
  if (args.flag("json")) {
    std::printf("%s\n", store::snapshot_info_json(info).c_str());
    return 0;
  }
  std::printf("snapshot: %s\n", file->c_str());
  std::printf("  format version: %u\n", info.format_version);
  std::printf("  topology checksum: %llu\n",
              static_cast<unsigned long long>(info.topology_checksum));
  std::printf("  ases: %u  links: %llu  regions: %u\n", info.ases,
              static_cast<unsigned long long>(info.links), info.regions);
  std::printf("  baseline targets: %u\n", info.baseline_targets);
  std::printf("  params: seed=%llu scale=%u tier1_shortest_path=%d "
              "stub_first_hop_filter=%d\n",
              static_cast<unsigned long long>(info.params.seed),
              info.params.scale, info.params.tier1_shortest_path ? 1 : 0,
              info.params.stub_first_hop_filter ? 1 : 0);
  return 0;
}

int cmd_snapshot_load(const Args& args) {
  const auto file = args.text("file");
  if (!file) throw ConfigError("snapshot load requires --file <file>");
  const store::Snapshot snapshot = store::load_snapshot(*file);
  const Scenario scenario = Scenario::from_snapshot(snapshot);

  // End-to-end integrity check beyond the checksums: recompute the first
  // stored baseline cold and compare route-for-route.
  const std::vector<AsId> targets = snapshot.baselines.targets();
  if (!targets.empty()) {
    const AsId probe = targets.front();
    const store::BaselineStore recomputed = store::BaselineStore::compute(
        scenario.graph(), scenario.policy(), std::vector<AsId>{probe});
    const RouteTable* stored = snapshot.baselines.find(probe);
    const RouteTable* fresh = recomputed.find(probe);
    for (AsId v = 0; v < scenario.graph().num_ases(); ++v) {
      const Route& a = stored->routes[v];
      const Route& b = fresh->routes[v];
      if (a.origin != b.origin || a.cls != b.cls || a.path_len != b.path_len ||
          a.via != b.via) {
        throw ConfigError("stored baseline for target " + std::to_string(probe) +
                          " diverges from a fresh convergence at AS " +
                          std::to_string(v));
      }
    }
  }
  std::printf("%s: ok — %u ASes, %zu baselines, first baseline verified "
              "against a cold convergence\n",
              file->c_str(), scenario.graph().num_ases(),
              snapshot.baselines.size());
  return 0;
}

/// Parse a decimal option (e.g. --target-ci 0.005); absent -> fallback.
double parse_fraction_option(const Args& args, const std::string& key,
                             double fallback) {
  const auto text = args.text(key);
  if (!text || text->empty()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(text->c_str(), &end);
  if (end == nullptr || *end != '\0' || value < 0.0 || value > 1.0) {
    throw ConfigError("bad --" + key + " value: " + *text +
                      " (want a fraction in [0, 1])");
  }
  return value;
}

int cmd_campaign(const Args& args) {
  campaign::CampaignSpec spec;
  spec.seed = args.number("sample-seed").value_or(1);
  spec.sample_budget = args.number("samples").value_or(100000);
  spec.target_ci = parse_fraction_option(args, "target-ci", 0.0);
  spec.batch = args.number("batch").value_or(0);
  spec.workers = static_cast<unsigned>(args.number("workers").value_or(1));
  spec.deployment_top =
      static_cast<std::uint32_t>(args.number("deployment-top").value_or(0));
  spec.probes = static_cast<std::uint32_t>(args.number("probes").value_or(0));
  if (spec.sample_budget == 0) throw ConfigError("--samples must be positive");
  if (spec.workers == 0) spec.workers = 1;

  // Scenario + victim-pool baselines: reuse a snapshot's stored baselines
  // verbatim, or converge them here for the generated/loaded topology.
  std::optional<Scenario> scenario;
  std::shared_ptr<const store::BaselineStore> baselines;
  if (const auto snapshot_path = args.text("snapshot")) {
    store::Snapshot snapshot = store::load_snapshot(*snapshot_path);
    scenario.emplace(Scenario::from_snapshot(snapshot));
    baselines = std::make_shared<const store::BaselineStore>(
        std::move(snapshot.baselines));
  } else {
    scenario.emplace(load_scenario(args));
    std::vector<AsId> victims;
    {
      const std::string spec_text = args.text("victims").value_or("transit");
      if (spec_text == "transit" || spec_text.empty()) {
        victims = scenario->transit();
      } else if (spec_text == "all") {
        victims.resize(scenario->graph().num_ases());
        for (AsId v = 0; v < scenario->graph().num_ases(); ++v) victims[v] = v;
      } else {
        for (const std::string_view field : split(spec_text, ',')) {
          const auto asn = parse_u64(trim(field));
          if (!asn) {
            throw ConfigError("bad --victims entry: " + std::string(field));
          }
          victims.push_back(
              scenario->graph().require(static_cast<Asn>(*asn)));
        }
      }
    }
    BGPSIM_PROGRESS(victims.size());
    BGPSIM_PROGRESS_PHASE("campaign.baselines");
    baselines = std::make_shared<const store::BaselineStore>(
        store::BaselineStore::compute(scenario->graph(), scenario->policy(),
                                      victims));
  }
  if (baselines->size() == 0) {
    throw ConfigError("victim pool is empty — nothing to sample");
  }

  BGPSIM_PROGRESS(spec.sample_budget);
  BGPSIM_PROGRESS_PHASE("campaign.samples");
  const campaign::CampaignResult result =
      campaign::run_campaign(*scenario, baselines, spec);
  std::printf("%s\n", campaign::campaign_report_json(result).c_str());
  return 0;
}

volatile std::sig_atomic_t g_serve_stop = 0;

void serve_signal_handler(int) { g_serve_stop = 1; }

int cmd_serve(const Args& args) {
  const auto snapshot_path = args.text("snapshot");
  if (!snapshot_path) throw ConfigError("serve requires --snapshot <file>");
  const auto workers =
      static_cast<unsigned>(args.number("workers").value_or(4));

  serve::WhatIfService service(store::load_snapshot(*snapshot_path), workers);

  serve::QueryServerOptions options;
  options.port = static_cast<std::uint16_t>(args.number("port").value_or(0));
  options.workers = workers;
  if (const auto max_body = args.number("max-body")) {
    options.limits.max_body_bytes = static_cast<std::size_t>(*max_body);
  }
  if (const auto access_log = args.text("access-log");
      access_log && !access_log->empty()) {
    serve::AccessLog::instance().set_output(*access_log);
  }
  serve::QueryServer server(service.make_router(), options);
  if (!server.start()) {
    std::fprintf(stderr, "error: cannot bind 127.0.0.1:%u\n", options.port);
    return 1;
  }

  std::signal(SIGTERM, serve_signal_handler);  // bgpsim-lint: allow(signal-safety)
  std::signal(SIGINT, serve_signal_handler);   // bgpsim-lint: allow(signal-safety)
  std::printf("serving %s on 127.0.0.1:%u (%u workers, %u ASes, %zu baselines)\n",
              snapshot_path->c_str(), server.port(), workers,
              service.scenario().graph().num_ases(),
              static_cast<std::size_t>(service.info().baseline_targets));
  std::fflush(stdout);

  while (g_serve_stop == 0) {
    poll(nullptr, 0, 200);  // sleep; interrupted early by signals
  }
  std::printf("signal received, draining...\n");
  server.stop();
  std::printf("drained, exiting\n");
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: bgpsim <generate|info|attack|attribution|sweep|detect"
               "|promcheck|snapshot save|snapshot info|snapshot load|campaign"
               "|serve> [options]\n"
               "see the header of tools/bgpsim_cli.cpp for details\n");
  return 2;
}

/// Dump the metrics-registry snapshot after a command ran under --obs:
/// full JSON to a file, or a human-readable summary to stdout where time.*
/// histograms show latency quantiles instead of raw bucket counts.
void emit_obs_snapshot(const std::string& destination) {
  const obs::RegistrySnapshot snap = obs::registry().snapshot();
  if (!destination.empty()) {
    std::ofstream out(destination);
    out << snap.to_json() << '\n';
    if (!out) {
      std::fprintf(stderr, "error: cannot write metrics snapshot to %s\n",
                   destination.c_str());
    } else {
      std::printf("metrics snapshot: %s\n", destination.c_str());
    }
    return;
  }

  std::printf("-- metrics snapshot --\n");
  for (const auto& [name, value] : snap.counters) {
    std::printf("  counter  %-40s %llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snap.gauges) {
    std::printf("  gauge    %-40s %g\n", name.c_str(), value);
  }
  for (const auto& [name, hist] : snap.histograms) {
    if (name.rfind("time.", 0) == 0) {
      std::printf("  time     %-40s n=%llu  p50=%.3gms p90=%.3gms p99=%.3gms\n",
                  name.c_str(), static_cast<unsigned long long>(hist.count),
                  hist.approx_quantile(0.50) * 1e3,
                  hist.approx_quantile(0.90) * 1e3,
                  hist.approx_quantile(0.99) * 1e3);
    } else {
      std::printf("  hist     %-40s n=%llu  mean=%.6g min=%g max=%g\n",
                  name.c_str(), static_cast<unsigned long long>(hist.count),
                  hist.count > 0 ? hist.sum / static_cast<double>(hist.count)
                                 : 0.0,
                  hist.min, hist.max);
    }
  }
}

int run_command(const Args& args) {
  if (args.command == "generate") return cmd_generate(args);
  if (args.command == "info") return cmd_info(args);
  if (args.command == "attack") return cmd_attack(args);
  if (args.command == "attribution") return cmd_attribution(args);
  if (args.command == "sweep") return cmd_sweep(args);
  if (args.command == "detect") return cmd_detect(args);
  if (args.command == "promcheck") return cmd_promcheck(args);
  if (args.command == "snapshot-save") return cmd_snapshot_save(args);
  if (args.command == "snapshot-info") return cmd_snapshot_info(args);
  if (args.command == "snapshot-load") return cmd_snapshot_load(args);
  if (args.command == "campaign") return cmd_campaign(args);
  if (args.command == "serve") return cmd_serve(args);
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    if (const auto trace = args.text("trace"); trace && !trace->empty()) {
      obs::TraceSink::instance().set_output(*trace);
    }
    if (const auto eventlog = args.text("eventlog"); eventlog && !eventlog->empty()) {
      obs::EventLogSink::instance().set_output(*eventlog);
    }
    if (args.flag("progress")) obs::heartbeat_force_stderr(true);
    if (const auto profile = args.text("profile"); profile && !profile->empty()) {
      obs::profiler_start(*profile,
                          static_cast<unsigned>(env_u64("BGPSIM_PROFILE_HZ",
                                                        obs::kDefaultProfileHz)));
    } else {
      obs::profiler_start_from_env();  // --profile wins over BGPSIM_PROFILE
    }
    obs::heartbeat_start();  // no-op unless a telemetry sink is configured
    const int status = run_command(args);
    obs::heartbeat_stop();
    obs::profiler_stop();  // writes the folded profile named by --profile
    if (args.flag("obs")) emit_obs_snapshot(args.text("obs").value_or(""));
    obs::flush_trace();
    return status;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
